#include "core/engine_core.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdlib>
#include <limits>
#include <new>
#include <sstream>
#include <stdexcept>
#include <thread>
#include <unordered_map>

#include "core/kernels/dispatch.hpp"
#include "model/matrix.hpp"
#include "util/fault.hpp"
#include "util/log.hpp"

namespace plk {

namespace {

/// Dispatch a generic lambda templated on the (compile-time) state count.
template <class Fn>
void dispatch_states(int states, Fn&& fn) {
  switch (states) {
    case 4:
      fn.template operator()<4>();
      break;
    case 20:
      fn.template operator()<20>();
      break;
    default:
      throw std::logic_error("unsupported state count " +
                             std::to_string(states));
  }
}

}  // namespace

/// Per-partition shared state: model prototype, per-taxon tip encoding, and
/// the tip lookup-table LRUs every context draws from.
struct EngineCore::PartStatic {
  const CompressedPartition* src = nullptr;
  PartitionModel prototype;
  std::size_t patterns = 0;
  int states = 4;
  int cats = 4;
  std::vector<double> base_weights;

  // Tip encoding: per taxon, a code into `indicators` (rows of S doubles,
  // one per distinct state mask occurring in this partition). Stored per
  // alignment taxon so trees with different tip orderings share it; each
  // context maps its tree tips to taxa. The mask -> code catalog is kept
  // after construction so set_taxon_masks() can re-encode a query-slot
  // taxon's row (extending the catalog when a query carries a mask the
  // reference data never produced).
  std::vector<std::vector<std::uint16_t>> taxon_codes;  // [taxon][pattern]
  std::unordered_map<StateMask, std::uint16_t> code_of;
  std::vector<StateMask> catalog;
  AlignedDoubleVec indicators;
  std::size_t n_codes = 0;  // rows in `indicators`

  // Cached tip lookup tables for the specialized kernels: per tip-adjacent
  // edge, a small LRU of tables keyed on (model epoch, branch length). The
  // table's content depends on nothing else, and model epochs are unique
  // core-wide, so any number of contexts can share one LRU. Entries
  // referenced by commands of the open batch carry `pinned_flush` equal to
  // the core's flush id and are never evicted mid-batch; a flush that needs
  // more live tables than kTipTableLruSize grows the vector and the core
  // trims it back afterwards.
  struct TipTableEntry {
    std::uint64_t epoch = 0;
    double blen = -1.0;
    std::uint64_t last_used = 0;
    std::uint64_t pinned_flush = 0;
    /// Service pin (EngineCore::pin_service_context): the entry matches the
    /// pinned context's model epoch AND its steady-state branch length, so
    /// eviction policies (LRU shrink, dead-context release) skip it. Overlay
    /// churn at other lengths stays evictable.
    bool pinned_service = false;
    AlignedDoubleVec table;
  };
  std::vector<std::vector<TipTableEntry>> tip_tables;  // [edge][slot]

  // Per-pattern invariant-site state masks: the AND of every alignment
  // taxon's mask for that pattern (gaps and ambiguity codes are compatible
  // with any state they contain). Nonzero means the pattern COULD be an
  // invariant site — the +I term's per-pattern frequency sum runs over the
  // surviving states. Computed over ALL alignment taxa (not the taxa of any
  // one tree), so every context of this core agrees on it; lazily built and
  // invalidated when set_taxon_masks rewrites a taxon's row.
  std::vector<StateMask> inv_masks;
  bool inv_masks_dirty = true;
  std::uint64_t inv_mask_gen = 0;  // bumped on invalidation (contexts key
                                   // their cached inv_contrib on it)

  explicit PartStatic(PartitionModel m) : prototype(std::move(m)) {}

  const std::vector<StateMask>& invariant_masks() {
    if (inv_masks_dirty) {
      inv_masks.assign(patterns, ~StateMask{0});
      for (const auto& codes : taxon_codes)
        for (std::size_t i = 0; i < patterns; ++i)
          inv_masks[i] &= catalog[codes[i]];
      inv_masks_dirty = false;
    }
    return inv_masks;
  }

  std::size_t clv_stride() const {
    return static_cast<std::size_t>(cats) * static_cast<std::size_t>(states);
  }
};

/// Per-partition context state: the mutable model copy, pattern weights,
/// CLVs with scale counts, the NR sumtable, and the sym tip table.
struct EvalContext::PartDyn {
  PartitionModel model;
  std::vector<double> weights;

  // Inner-node CLVs and scale counts, indexed by (node - tip_count). All
  // kernel access goes through clv_ptr/scale_ptr: a regular context points
  // them at its own storage below; an overlay context points them at its
  // parent's buffers until a node is recomputed, at which point the node is
  // redirected to a leased ClvSlotPool slot (slot_of[inner] >= 0).
  //
  // CLV and sumtable storage is allocated WITHOUT value-initialization and
  // zero-filled by EngineCore::first_touch_context, so under sharding the
  // pages are first touched by the threads of the shard that owns the
  // corresponding (partition, vt) slices. Scale counts are small and stay
  // master-touched.
  std::vector<AlignedNoInitDoubleVec> clv;      // owned (empty for overlays)
  std::vector<std::vector<std::int32_t>> scale;
  std::vector<double*> clv_ptr;
  std::vector<std::int32_t*> scale_ptr;
  std::vector<int> slot_of;                     // -1 = shared / owned

  // NR sumtable at the current root edge: [pattern][cat][state].
  AlignedNoInitDoubleVec sumtable;

  // Per-pattern root scale counts captured by the sumtable pass (+I models
  // only — the NR fold needs them to lift the invariant term into the
  // sumtable's scaled units; empty otherwise).
  std::vector<std::int32_t> sum_scale;

  // Per-pattern invariant-site contribution p_inv * sum(freqs over the
  // pattern's invariant mask), consumed by evaluate/nr. Refreshed at
  // assembly whenever the model epoch moved (inv_epoch tracks it); empty
  // for models without the +I term.
  std::vector<double> inv_contrib;
  std::uint64_t inv_epoch = 0;
  std::uint64_t inv_gen = 0;  // PartStatic::inv_mask_gen it was built at

  // Sym x indicator tip table, keyed on the context's model epoch.
  std::uint64_t sym_epoch = 0;
  AlignedDoubleVec sym_table;

  explicit PartDyn(PartitionModel m) : model(std::move(m)) {}
};

/// One deferred table-construction unit queued during command assembly and
/// executed by the flush's parallel pre-stage: the per-category transition
/// matrices of one (edge, partition), plus — depending on the endpoint —
/// their transpose (inner child, specialized kernels) or the tip lookup
/// table built from them (tip child). Tasks write disjoint destinations, so
/// any thread may run any task with no ordering beyond "before phase 2".
struct EngineCore::PmatTask {
  /// kPmat builds per-category transition matrices (plus transposes / tip
  /// lookup tables); kNrScratch fills a derivative pass's exp/lambda tables
  /// in cmd.scratch. Both are assembly-time-recorded, flush-pre-stage-
  /// executed units: folding the NR scratch here moved its exp() loops off
  /// the serial master path into the already-parallel in-region pre-stage.
  enum class Kind { kPmat, kNrScratch };
  Kind kind = Kind::kPmat;
  int part = 0;
  const PartitionModel* model = nullptr;  // the context's model (stable)
  EdgeId edge = kNoId;        // for rollback of reserved tip-table entries
  double blen = 0.0;
  std::size_t off = 0;        // into cmd.pmats (kNrScratch: exp table offset
                              // into cmd.scratch)
  std::size_t off2 = 0;       // kNrScratch only: lambda table offset
  bool transpose = false;     // inner endpoint on the specialized path
  double* tip_dst = nullptr;  // reserved tip-table entry to fill, or null
};

/// One parallel command: a traversal op list optionally fused with an
/// evaluation, a per-site evaluation, a sumtable pass, or an NR pass.
struct EngineCore::Command {
  struct Op {
    NodeId node = kNoId;
    EdgeId toward = kNoId;  // the orientation this op establishes
    NodeId c1 = kNoId, c2 = kNoId;
    EdgeId e1 = kNoId, e2 = kNoId;
    std::vector<int> parts;
    // The model epoch each partition's CLV is computed AT (captured during
    // assembly): post-run bookkeeping stamps these, so a model invalidated
    // between submit() and wait() correctly leaves its CLVs marked stale.
    std::vector<std::uint64_t> epochs;
    // Offsets into `pmats` for each listed partition (child 1 and child 2).
    // `pmats` and `pmats_t` are filled in lockstep, so the same offsets
    // address the transposed matrices.
    std::vector<std::size_t> pmat1, pmat2;
    // Tip lookup tables per listed partition (nullptr for inner children).
    std::vector<const double*> tt1, tt2;
  };
  std::vector<Op> ops;

  bool do_eval = false;
  EdgeId eval_edge = kNoId;
  std::vector<int> eval_parts;
  std::vector<std::size_t> eval_pmat;
  std::vector<const double*> eval_tt;  // cv-side tip table per listed part

  bool do_sumtable = false;
  EdgeId sum_edge = kNoId;  // root edge the sumtable pass runs at
  std::vector<int> sum_parts;
  std::vector<std::size_t> sum_symt;       // transposed sym offsets (symt)
  std::vector<const double*> sum_ttu, sum_ttv;  // sym tip tables

  bool do_sites = false;
  int sites_part = -1;
  std::size_t sites_pmat = 0;
  const double* sites_tt = nullptr;
  double* sites_out = nullptr;

  bool do_nr = false;
  std::vector<int> nr_parts;
  // Per listed partition: offsets into `scratch` for exp(lam*r*b) and lam*r
  // tables, each cats*states doubles.
  std::vector<std::size_t> nr_exp, nr_lam;

  AlignedDoubleVec pmats;    // concatenated transition matrices (row-major)
  AlignedDoubleVec pmats_t;  // same matrices transposed (lockstep offsets)
  AlignedDoubleVec symt;     // transposed sym transforms (sum_symt offsets)
  AlignedDoubleVec scratch;  // NR tables

  // Deferred pmat / transpose / tip-table construction (filled at assembly,
  // executed by the flush's parallel pre-stage; see execute_batch).
  std::vector<PmatTask> pmat_tasks;
};

/// A queued request with its assembled command.
struct EngineCore::Pending {
  EvalContext* ctx = nullptr;
  EvalRequest req;
  Command cmd;
  int solo_part = -1;
};

// ---------------------------------------------------------------------------
// ClvSlotPool
// ---------------------------------------------------------------------------

ClvSlotPool::ClvSlotPool(EngineCore& core, std::size_t soft_cap)
    : core_(&core), soft_cap_(soft_cap) {
  slots_.resize(static_cast<std::size_t>(core.partition_count()));
  next_id_.assign(static_cast<std::size_t>(core.partition_count()), 0);
}

ClvSlotPool::Lease ClvSlotPool::acquire(int p) {
  // Fault injection (tests only): a CLV slot allocation failure, the
  // resource-exhaustion case the search's degradation ladder must absorb.
  if (fault::enabled() && fault::should_fire(fault::Site::kClvAlloc))
    throw std::bad_alloc();
  auto& list = slots_[static_cast<std::size_t>(p)];
  Slot* found = nullptr;
  int id = -1;
  for (auto& [sid, slot] : list)  // ordered map: lowest free id first
    if (!slot->in_use) {
      id = sid;
      found = slot.get();
      break;
    }
  if (found == nullptr) {
    const PartitionModel& proto = core_->prototype_model(p);
    const std::size_t stride =
        static_cast<std::size_t>(proto.gamma_categories()) *
        static_cast<std::size_t>(proto.model().states());
    auto slot = std::make_unique<Slot>();
    // No-init buffers: every pattern of a slot's CLV and scale counts is
    // written by the newview that targets it before anything reads them, so
    // zero-filling here would only mis-place the pages on the master's node.
    slot->clv.resize(core_->pattern_count(p) * stride);
    slot->scale.resize(core_->pattern_count(p));
    id = next_id_[static_cast<std::size_t>(p)]++;
    found = slot.get();
    list.emplace(id, std::move(slot));
  }
  found->in_use = true;
  ++in_use_;
  if (in_use_ > peak_) peak_ = in_use_;
  return {id, found->clv.data(), found->scale.data()};
}

void ClvSlotPool::release(int p, int slot) {
  Slot& s = *slots_[static_cast<std::size_t>(p)].at(slot);
  if (!s.in_use) throw std::logic_error("ClvSlotPool: double release");
  s.in_use = false;
  --in_use_;
}

void ClvSlotPool::trim() {
  // Ids are stable handles (the map never renumbers), so ANY free slot can
  // be reclaimed regardless of where it sits — a wave that released its
  // middle slots while later ones stay leased no longer pins the middle.
  // Reclaim from the highest id down so the low, oldest ids stay warm for
  // acquire()'s lowest-free-id reuse.
  for (auto& list : slots_) {
    std::size_t free = 0;
    for (const auto& [id, s] : list)
      if (!s->in_use) ++free;
    for (auto it = list.end(); it != list.begin() && free > soft_cap_;) {
      --it;
      if (it->second->in_use) continue;
      it = list.erase(it);
      --free;
    }
  }
}

std::size_t ClvSlotPool::slots_in_use() const { return in_use_; }

std::size_t ClvSlotPool::slots_allocated() const {
  std::size_t n = 0;
  for (const auto& list : slots_) n += list.size();
  return n;
}

// ---------------------------------------------------------------------------
// EngineCore
// ---------------------------------------------------------------------------

EngineCore::EngineCore(const CompressedAlignment& aln,
                       std::vector<PartitionModel> models, EngineOptions opts)
    : aln_(aln) {
  if (models.size() != aln.partition_count())
    throw std::invalid_argument("need one model per partition");

  for (std::size_t p = 0; p < models.size(); ++p) {
    const auto& cp = aln.partitions[p];
    if (models[p].model().states() != cp.states())
      throw std::invalid_argument("model/partition state count mismatch for '" +
                                  cp.name + "'");
    auto pd = std::make_unique<PartStatic>(std::move(models[p]));
    pd->src = &cp;
    pd->patterns = cp.pattern_count;
    pd->states = cp.states();
    pd->cats = pd->prototype.gamma_categories();
    pd->base_weights = cp.weights;
    parts_.push_back(std::move(pd));
  }

  build_tip_data();

  unlinked_ = opts.unlinked_branch_lengths;
  use_generic_ = opts.use_generic_kernels;
  log_info("simd kernels: " +
           (use_generic_ ? std::string("generic (use_generic_kernels)")
                         : kernel::describe_active_backend()));
  sched_strategy_ = opts.schedule;
  batch_exec_ = opts.batch_exec;

  // Any unrooted binary tree over n taxa has 2n - 3 edges, so the tip-table
  // LRUs can be sized before the first context exists.
  const std::size_t edges =
      aln.taxon_count() >= 2 ? 2 * aln.taxon_count() - 3 : 0;
  for (auto& pd : parts_) pd->tip_tables.resize(edges);

  // Shard layout: split the global threads across N sub-cores, each owning
  // a disjoint set of (partition, vt-range) slices of the schedule. 0 =
  // auto (PLK_SHARDS env, default 1 — the classic flat engine).
  vt_threads_ = std::max(1, opts.threads);
  int nshards = opts.shards;
  if (nshards == 0) {
    nshards = 1;
    if (const char* env = std::getenv("PLK_SHARDS")) {
      const int v = std::atoi(env);
      if (v >= 1) nshards = v;
    }
  }
  nshards = std::max(1, nshards);
  {
    std::vector<PartitionShape> shapes(parts_.size());
    for (std::size_t p = 0; p < parts_.size(); ++p) {
      shapes[p].patterns = parts_[p]->patterns;
      shapes[p].states = parts_[p]->states;
      shapes[p].cats = parts_[p]->cats;
    }
    const HostTopology topo = HostTopology::detect();
    plan_ = ShardPlan::build(nshards, vt_threads_, shapes, topo);
    int total_threads = 0;
    for (int s = 0; s < plan_.shard_count(); ++s)
      total_threads += plan_.shard(s).threads;
    for (int s = 0; s < plan_.shard_count(); ++s) {
      const ShardSpec& spec = plan_.shard(s);
      std::vector<int> cpus;
      if (spec.node >= 0)
        for (const NumaNode& node : topo.nodes)
          if (node.id == spec.node) cpus = node.cpus;
      shards_.push_back(std::make_unique<CoreShard>(
          s, spec, partition_count(), /*master_inline=*/s == 0,
          opts.instrument, opts.instrument_cpu_time, std::move(cpus),
          total_threads));
    }
  }
  team_ = &shards_[0]->team();
  check_numerics_ = opts.check_numerics;
  // The watchdog monitors the master-inline team. The master blocks inside
  // its own share of shard 0's command — and a cross-shard flush holds a
  // shared pre-stage barrier inside it — so a stalled worker on any shard
  // participating alongside shard 0 surfaces as shard 0's command
  // overrunning the deadline.
  team_->set_watchdog(opts.watchdog_seconds);
  team_->set_diagnostics(&EngineCore::describe_active_flush, this);
  fault::maybe_enable_fp_traps_from_env();
}

EngineCore::~EngineCore() = default;

void EngineCore::build_tip_data() {
  for (auto& pd : parts_) {
    const CompressedPartition& cp = *pd->src;
    const int s = pd->states;
    // Catalog of distinct state masks in this partition (kept on pd so
    // set_taxon_masks can translate — and extend — after construction).
    auto& code_of = pd->code_of;
    auto& catalog = pd->catalog;
    pd->taxon_codes.assign(aln_.taxon_count(), {});
    for (std::size_t x = 0; x < aln_.taxon_count(); ++x) {
      auto& codes = pd->taxon_codes[x];
      codes.resize(pd->patterns);
      for (std::size_t i = 0; i < pd->patterns; ++i) {
        const StateMask m = cp.tip_states[x][i];
        auto [it, inserted] =
            code_of.emplace(m, static_cast<std::uint16_t>(catalog.size()));
        if (inserted) catalog.push_back(m);
        codes[i] = it->second;
      }
    }
    if (catalog.size() > 65535)
      throw std::runtime_error("too many distinct state masks");
    pd->n_codes = catalog.size();
    pd->indicators.assign(catalog.size() * static_cast<std::size_t>(s), 0.0);
    for (std::size_t c = 0; c < catalog.size(); ++c)
      for (int j = 0; j < s; ++j)
        if (catalog[c] & (StateMask{1} << j))
          pd->indicators[c * static_cast<std::size_t>(s) +
                         static_cast<std::size_t>(j)] = 1.0;
  }
}

void EngineCore::set_taxon_masks(std::size_t x,
                                 std::span<const std::vector<StateMask>> masks) {
  if (x >= aln_.taxon_count())
    throw std::invalid_argument("set_taxon_masks: taxon out of range");
  if (masks.size() != parts_.size())
    throw std::invalid_argument("set_taxon_masks: need one row per partition");
  if (!pending_.empty())
    throw std::logic_error(
        "set_taxon_masks: a batch is pending; wait() first");
  for (std::size_t p = 0; p < parts_.size(); ++p) {
    PartStatic& pd = *parts_[p];
    if (masks[p].size() != pd.patterns)
      throw std::invalid_argument("set_taxon_masks: pattern count mismatch "
                                  "in partition " + std::to_string(p));
    auto& codes = pd.taxon_codes[x];
    bool grew = false;
    for (std::size_t i = 0; i < pd.patterns; ++i) {
      const StateMask m = masks[p][i];
      auto [it, inserted] =
          pd.code_of.emplace(m, static_cast<std::uint16_t>(pd.catalog.size()));
      if (inserted) {
        if (pd.catalog.size() >= 65535)
          throw std::runtime_error("too many distinct state masks");
        pd.catalog.push_back(m);
        grew = true;
      }
      codes[i] = it->second;
    }
    // The taxon's row changed, so the all-taxa invariant masks are stale
    // regardless of catalog growth; bumping the generation makes every +I
    // context refresh its cached inv_contrib on next use.
    pd.inv_masks_dirty = true;
    ++pd.inv_mask_gen;
    if (grew) {
      // The catalog gained rows: cached tip lookup tables (and per-context
      // sym tables, caught by the size check in sym_table_for) are sized by
      // n_codes and must not be read with the new codes. Drop every cached
      // table of this partition — pinned or not; the pin protects against
      // eviction policy, not against invalidation.
      const int s = pd.states;
      pd.n_codes = pd.catalog.size();
      pd.indicators.assign(pd.n_codes * static_cast<std::size_t>(s), 0.0);
      for (std::size_t c = 0; c < pd.catalog.size(); ++c)
        for (int j = 0; j < s; ++j)
          if (pd.catalog[c] & (StateMask{1} << j))
            pd.indicators[c * static_cast<std::size_t>(s) +
                          static_cast<std::size_t>(j)] = 1.0;
      for (auto& lru : pd.tip_tables) lru.clear();
      ++stats_.tip_catalog_extensions;
    }
  }
}

void EngineCore::pin_service_context(const EvalContext* ctx) {
  if (ctx != nullptr && ctx->core_ != this)
    throw std::invalid_argument(
        "pin_service_context: context belongs to another core");
  // Dropping or replacing a pin leaves stale pinned_service flags behind;
  // clear them so the entries rejoin normal LRU eviction.
  if (service_ctx_ != nullptr)
    for (auto& pd : parts_)
      for (auto& lru : pd->tip_tables)
        for (auto& ent : lru) ent.pinned_service = false;
  service_ctx_ = ctx;
  service_epochs_.clear();
  if (ctx != nullptr)
    service_epochs_ = ctx->model_epoch_;
}

std::size_t EngineCore::pattern_count(int p) const {
  return parts_[static_cast<std::size_t>(p)]->patterns;
}

std::size_t EngineCore::total_patterns() const {
  std::size_t n = 0;
  for (const auto& pd : parts_) n += pd->patterns;
  return n;
}

const PartitionModel& EngineCore::prototype_model(int p) const {
  return parts_[static_cast<std::size_t>(p)]->prototype;
}

namespace {

/// A measured per-partition cost vector is only usable if EVERY partition
/// has a positive entry (a partition whose timed reps landed below clock
/// granularity would otherwise dwarf, or be dwarfed by, the rest).
bool measured_complete(const std::vector<double>& cost, std::size_t parts) {
  if (cost.size() != parts) return false;
  for (double c : cost)
    if (!(c > 0.0)) return false;
  return true;
}

}  // namespace

const WorkSchedule& EngineCore::schedule() {
  if (sched_dirty_) {
    // Measured weights are seconds-per-pattern — a different unit from the
    // static states^2 x cats model — so they are only usable when complete
    // (see measured_complete above).
    const bool use_measured =
        sched_strategy_ == SchedulingStrategy::kMeasured &&
        measured_complete(measured_cost_, parts_.size());
    // Pure NR passes get their own schedule when NR was calibrated
    // separately: NR's inner loops are linear in the state count where
    // newview/evaluate are quadratic, so one shared cost model necessarily
    // skews one of them on mixed DNA+protein data.
    const bool use_measured_nr =
        sched_strategy_ == SchedulingStrategy::kMeasured &&
        measured_complete(measured_nr_cost_, parts_.size());
    std::vector<PartitionShape> shapes(parts_.size());
    std::vector<PartitionShape> shapes_nr(parts_.size());
    for (std::size_t p = 0; p < parts_.size(); ++p) {
      const PartStatic& pd = *parts_[p];
      PartitionShape& sh = shapes[p];
      sh.patterns = pd.patterns;
      sh.states = pd.states;
      sh.cats = pd.cats;
      // Fold the observed seconds-per-pattern into the weight so that
      // cost_per_pattern() == the measurement; without a complete
      // calibration every partition keeps the static model.
      if (use_measured)
        sh.weight = measured_cost_[p] / (static_cast<double>(pd.states) *
                                        static_cast<double>(pd.cats));
      shapes_nr[p] = sh;
      if (use_measured_nr)
        shapes_nr[p].weight =
            measured_nr_cost_[p] /
            (static_cast<double>(pd.states) * static_cast<double>(pd.cats));
      else
        shapes_nr[p].weight = sh.weight;
    }
    sched_ = WorkSchedule::build(sched_strategy_, vt_threads_, shapes);
    sched_nr_ = use_measured_nr
                    ? WorkSchedule::build(sched_strategy_, vt_threads_,
                                          shapes_nr)
                    : sched_;
    // Refresh every shard's cached slice view (per-partition modeled cost
    // of its owned vts) — the coarse packer prices items with it.
    for (auto& shard : shards_) shard->cache_slice_costs(sched_, shapes);
    sched_dirty_ = false;
  }
  return sched_;
}

const WorkSchedule& EngineCore::schedule_nr() {
  schedule();  // rebuilds both on dirty
  return sched_nr_;
}

void EngineCore::set_scheduling_strategy(SchedulingStrategy s) {
  if (s == sched_strategy_) return;
  sched_strategy_ = s;
  sched_dirty_ = true;
}

void EngineCore::calibrate_schedule(EvalContext& ctx, EdgeId edge, int reps) {
  if (!team_->instrumented() || reps < 1) return;
  measured_cost_.assign(parts_.size(), 0.0);
  for (int p = 0; p < partition_count(); ++p) {
    const std::vector<int> one{p};
    // Warm-up evaluation brings CLVs, tables and caches up to date so the
    // timed repetitions measure the steady-state evaluate cost.
    ctx.loglikelihood(edge, one);
    const double before = team_stats().total_work_seconds;
    for (int r = 0; r < reps; ++r) ctx.loglikelihood(edge, one);
    const double dt = team_stats().total_work_seconds - before;
    const auto n = parts_[static_cast<std::size_t>(p)]->patterns;
    if (n > 0 && dt > 0.0)
      measured_cost_[static_cast<std::size_t>(p)] =
          dt / (static_cast<double>(reps) * static_cast<double>(n));
  }
  // Time the pure Newton-Raphson derivative pass separately: its inner
  // loops are linear in the state count where newview/evaluate are
  // quadratic, so sharing evaluate's cost model would systematically
  // misplace NR work on mixed DNA+protein data. schedule_nr() only departs
  // from schedule() when this vector comes out complete.
  measured_nr_cost_.assign(parts_.size(), 0.0);
  ctx.prepare_root(edge);
  for (int p = 0; p < partition_count(); ++p) {
    const std::vector<int> one{p};
    double len = ctx.branch_lengths().get(edge, p);
    double d1 = 0.0, d2 = 0.0;
    ctx.compute_sumtable(one);
    // Warm-up NR round, then the timed pure-NR repetitions (the sumtable
    // stays valid across NR rounds, so each rep is one NR-only command).
    ctx.nr_derivatives(one, {&len, 1}, {&d1, 1}, {&d2, 1});
    const double before = team_stats().total_work_seconds;
    for (int r = 0; r < reps; ++r)
      ctx.nr_derivatives(one, {&len, 1}, {&d1, 1}, {&d2, 1});
    const double dt = team_stats().total_work_seconds - before;
    const auto n = parts_[static_cast<std::size_t>(p)]->patterns;
    if (n > 0 && dt > 0.0)
      measured_nr_cost_[static_cast<std::size_t>(p)] =
          dt / (static_cast<double>(reps) * static_cast<double>(n));
  }
  sched_dirty_ = true;
}

void EngineCore::reset_stats() {
  stats_ = EngineStats{};
  for (auto& shard : shards_) shard->team().reset_stats();
  agg_team_stats_ = TeamStats{};
}

const TeamStats& EngineCore::team_stats() const {
  if (shards_.size() == 1) return team_->stats();
  // Fan-out deltas (sync/critical-path/work/imbalance) are folded into
  // agg_team_stats_ as each flush completes; only the monitor-thread
  // watchdog counter needs refreshing on read.
  std::uint64_t dumps = 0;
  for (const auto& shard : shards_) dumps += shard->team().stats().watchdog_dumps;
  agg_team_stats_.watchdog_dumps = dumps;
  return agg_team_stats_;
}

namespace {

/// Serialize everything the likelihood of a partition depends on through the
/// model: state count, the full rate-heterogeneity state (kind, Gamma
/// layout, shape, p_inv, per-category rates and weights — via
/// RateModel::append_state), exchangeabilities, frequencies. The
/// eigendecomposition is a pure function of exch/freqs. Tip tables are keyed
/// on the epochs this produces, so two models may share an epoch only if
/// EVERY number the kernels consume matches — which is why the rate-model
/// state must be in here even though pmats don't depend on the weights.
void append_model_state(const PartitionModel& m, std::vector<double>& out) {
  const SubstModel& sm = m.model();
  out.push_back(static_cast<double>(sm.states()));
  m.rate_model().append_state(out);
  out.insert(out.end(), sm.exchangeabilities().begin(),
             sm.exchangeabilities().end());
  out.insert(out.end(), sm.freqs().begin(), sm.freqs().end());
}

std::uint64_t fnv1a_doubles(const std::vector<double>& v) {
  std::uint64_t h = 1469598103934665603ull;
  const auto* bytes = reinterpret_cast<const unsigned char*>(v.data());
  for (std::size_t i = 0; i < v.size() * sizeof(double); ++i) {
    h ^= bytes[i];
    h *= 1099511628211ull;
  }
  return h;
}

}  // namespace

std::uint64_t EngineCore::epoch_for_model(const PartitionModel& m) {
  std::vector<double> state;
  append_model_state(m, state);
  const std::uint64_t h = fnv1a_doubles(state);
  auto [it, inserted] = epoch_of_state_.try_emplace(h);
  if (!inserted) {
    if (it->second.state == state) {
      it->second.last_used = ++epoch_use_clock_;
      return it->second.epoch;
    }
    return next_epoch();  // true 64-bit collision: keep the epochs distinct
  }
  it->second.epoch = next_epoch();
  it->second.state = std::move(state);
  it->second.last_used = ++epoch_use_clock_;
  const std::uint64_t epoch = it->second.epoch;
  // Bound the registry as a real LRU: evicting an association only costs
  // future sharing (the same state seen again gets a fresh unique epoch),
  // never correctness — and unlike wholesale clearing, the states a long
  // model-optimization run keeps returning to stay resident. Eviction is
  // amortized: once over the cap, the stalest 1/16 go at once.
  if (epoch_of_state_.size() > kEpochRegistryCap) {
    std::vector<std::pair<std::uint64_t, std::uint64_t>> stamps;  // (used, key)
    stamps.reserve(epoch_of_state_.size());
    for (const auto& [key, ent] : epoch_of_state_) {
      // The pinned service context's epochs never leave the registry: losing
      // one would silently orphan the service's pinned tip tables (fresh
      // overlays would re-register the same state under a NEW epoch and
      // rebuild every table).
      if (std::find(service_epochs_.begin(), service_epochs_.end(),
                    ent.epoch) != service_epochs_.end())
        continue;
      stamps.emplace_back(ent.last_used, key);
    }
    const std::size_t evict = std::min(
        stamps.size(), std::max<std::size_t>(1, kEpochRegistryCap / 16));
    std::nth_element(stamps.begin(),
                     stamps.begin() + static_cast<std::ptrdiff_t>(evict),
                     stamps.end());
    for (std::size_t i = 0; i < evict; ++i)
      epoch_of_state_.erase(stamps[i].second);
    stats_.epoch_registry_evictions += evict;
  }
  return epoch;
}

void EngineCore::check_not_pending(const EvalContext& ctx) const {
  for (const Pending& item : pending_)
    if (item.ctx == &ctx)
      throw std::logic_error(
          "EvalContext has a pending batched request; wait() first");
}

// --- tip lookup tables -------------------------------------------------------

EngineCore::TipTableRef EngineCore::tip_table_for(EvalContext& ctx, int p,
                                                  EdgeId e) {
  PartStatic& pd = *parts_[static_cast<std::size_t>(p)];
  auto& lru = pd.tip_tables[static_cast<std::size_t>(e)];
  const double b = ctx.lengths_.get(e, p);
  const std::uint64_t epoch = ctx.model_epoch_[static_cast<std::size_t>(p)];
  // Does this (epoch, blen) key belong to the pinned service context's
  // steady state? Overlays share the parent's content-addressed epoch, so
  // the check must also match the length against the PINNED context (not
  // the requester): NR churn at other lengths stays evictable.
  const bool service =
      service_ctx_ != nullptr && e < service_ctx_->lengths_.edge_count() &&
      std::find(service_epochs_.begin(), service_epochs_.end(), epoch) !=
          service_epochs_.end() &&
      service_ctx_->lengths_.get(e, p) == b;

  for (auto& ent : lru) {
    if (!ent.table.empty() && ent.epoch == epoch && ent.blen == b) {
      ent.last_used = ++tip_clock_;
      ent.pinned_flush = flush_id_;
      if (service) ent.pinned_service = true;
      ++stats_.tip_table_hits;
      // A hit may be an entry merely *reserved* earlier in this flush's
      // assembly: its construction task is already queued (once), and the
      // pre-stage barrier orders that build before any kernel read.
      return {ent.table.data(), nullptr, false};
    }
  }
  // Miss: reuse an empty unpinned slot, else grow up to capacity, else
  // evict the least-recently-used unpinned entry. When every resident
  // entry is pinned by the open batch, grow past capacity (entry table
  // pointers are cached in queued commands and must stay alive until the
  // flush); trim_tip_tables() shrinks the cache back afterwards.
  PartStatic::TipTableEntry* victim = nullptr;
  for (auto& ent : lru) {
    if (ent.pinned_flush == flush_id_) continue;  // referenced by this batch
    if (ent.pinned_service) continue;             // service steady state
    if (ent.table.empty()) {
      victim = &ent;  // prefer an unused slot over evicting
      break;
    }
    if (victim == nullptr || ent.last_used < victim->last_used) victim = &ent;
  }
  const bool have_empty_slot = victim != nullptr && victim->table.empty();
  if (!have_empty_slot &&
      (victim == nullptr ||
       lru.size() < static_cast<std::size_t>(kTipTableLruSize))) {
    if (lru.size() >= static_cast<std::size_t>(kTipTableLruSize))
      lru_overflow_.emplace_back(p, e);
    lru.emplace_back();
    victim = &lru.back();
  }
  // Reserve only: size the buffer and stamp the key now (so further lookups
  // in this flush hit and the entry is pinned), but leave the contents to
  // the caller's queued PmatTask — the table is a pure function of the
  // transition matrices, which are themselves built in the parallel
  // pre-stage.
  victim->table.resize(pd.n_codes * pd.clv_stride());
  victim->epoch = epoch;
  victim->blen = b;
  victim->last_used = ++tip_clock_;
  victim->pinned_flush = flush_id_;
  victim->pinned_service = service;
  ++stats_.tip_table_rebuilds;
  return {victim->table.data(), victim->table.data(), true};
}

const double* EngineCore::queue_edge_tables(EvalContext& ctx, Command& cmd,
                                            int p, EdgeId e, NodeId endpoint,
                                            std::size_t& off_out) {
  // Fault injection (tests only): an allocation failure mid-assembly, after
  // earlier calls for this command may already have reserved tip-table
  // entries — the exact unwind path rollback_command_tables exists for.
  if (fault::enabled() && fault::should_fire(fault::Site::kAssemblyThrow))
    throw std::bad_alloc();
  const PartStatic& pd = *parts_[static_cast<std::size_t>(p)];
  const EvalContext::PartDyn& dy = *ctx.dyn_[static_cast<std::size_t>(p)];
  const std::size_t off = cmd.pmats.size();
  off_out = off;
  cmd.pmats.resize(off + static_cast<std::size_t>(pd.cats) *
                             static_cast<std::size_t>(pd.states) *
                             static_cast<std::size_t>(pd.states));
  PmatTask task;
  task.part = p;
  task.model = &dy.model;
  task.edge = e;
  task.blen = ctx.lengths_.get(e, p);
  task.off = off;
  const double* tt = nullptr;
  if (!use_generic_) {
    if (ctx.tree_.is_tip(endpoint)) {
      const TipTableRef ref = tip_table_for(ctx, p, e);
      tt = ref.data;
      task.tip_dst = ref.dst;  // null when the table is already resident
    } else {
      task.transpose = true;
    }
  }
  cmd.pmat_tasks.push_back(task);
  return tt;
}

void EngineCore::rollback_command_tables(Command& cmd) {
  // Only tasks that were going to BUILD a tip table reserved an entry; a
  // task whose lookup hit leaves the resident entry valid (its contents are
  // real, built by a previous flush or an earlier queued command). Reserved
  // entries are matched by their heap buffer (task.tip_dst aliases
  // entry.table.data(), which is stable across LRU vector growth, unlike
  // pointers to the entries themselves).
  for (const PmatTask& t : cmd.pmat_tasks) {
    if (t.tip_dst == nullptr) continue;
    auto& lru = parts_[static_cast<std::size_t>(t.part)]
                    ->tip_tables[static_cast<std::size_t>(t.edge)];
    for (auto& ent : lru) {
      if (ent.table.data() != t.tip_dst) continue;
      // Clear, not erase: other queued commands may cache pointers into
      // NEIGHBOURING entries of this LRU vector. An empty table never
      // matches a lookup (hits require !table.empty()), so the stamped key
      // is inert; unpinning lets the slot be reused next flush.
      ent.table.clear();
      ent.table.shrink_to_fit();
      ent.epoch = 0;
      ent.blen = -1.0;
      ent.pinned_flush = 0;
      break;
    }
  }
  ++stats_.assembly_rollbacks;
}

namespace {

/// Erase unpinned entries, least-recently-used first, until `lru` holds at
/// most `cap` (pinned entries — referenced by an open batch, or part of the
/// pinned service context's steady state — never go).
template <class Lru>
void shrink_lru(Lru& lru, std::size_t cap, std::uint64_t flush_id) {
  while (lru.size() > cap) {
    auto oldest = lru.end();
    for (auto it = lru.begin(); it != lru.end(); ++it) {
      if (it->pinned_flush == flush_id) continue;
      if (it->pinned_service) continue;
      if (oldest == lru.end() || it->last_used < oldest->last_used)
        oldest = it;
    }
    if (oldest == lru.end()) return;  // everything pinned
    lru.erase(oldest);
  }
}

}  // namespace

void EngineCore::trim_tip_tables(std::size_t batch_width) {
  // Keep one entry per context of the batch that just ran (repeated wide
  // batches — a lockstep bootstrap pass, a fixed-model topology scan —
  // would otherwise rebuild (width - cap) tables per edge every flush),
  // but never fewer than the steady-state LRU capacity.
  const std::size_t cap =
      std::max(static_cast<std::size_t>(kTipTableLruSize), batch_width);
  for (const auto& [p, e] : lru_overflow_) {
    shrink_lru(parts_[static_cast<std::size_t>(p)]
                   ->tip_tables[static_cast<std::size_t>(e)],
               cap, flush_id_);
  }
  lru_overflow_.clear();
}

void EngineCore::release_context_tables() {
  // A destroyed context's epochs never recur, so over-cap entries are dead
  // weight; shrink every LRU back to the steady-state capacity. (Entries
  // within the cap that carry dead epochs are evicted by normal LRU
  // traffic.)
  for (auto& pd : parts_)
    for (auto& lru : pd->tip_tables)
      shrink_lru(lru, static_cast<std::size_t>(kTipTableLruSize), flush_id_);
}

const double* EngineCore::sym_table_for(EvalContext& ctx, int p) {
  PartStatic& pd = *parts_[static_cast<std::size_t>(p)];
  EvalContext::PartDyn& dy = *ctx.dyn_[static_cast<std::size_t>(p)];
  const std::uint64_t epoch = ctx.model_epoch_[static_cast<std::size_t>(p)];
  // The size check catches catalog growth (set_taxon_masks): a cached sym
  // table sized for the old code count must rebuild before the new codes
  // can index it.
  if (dy.sym_epoch != epoch ||
      dy.sym_table.size() != pd.n_codes * static_cast<std::size_t>(pd.states)) {
    dy.sym_table.resize(pd.n_codes * static_cast<std::size_t>(pd.states));
    dispatch_states(pd.states, [&]<int S>() {
      kernel::build_sym_tip_table<S>(dy.model.model().sym_transform().data(),
                                     pd.indicators.data(), pd.n_codes,
                                     dy.sym_table.data());
    });
    dy.sym_epoch = epoch;
  }
  return dy.sym_table.data();
}

// --- command assembly --------------------------------------------------------

kernel::ChildView EngineCore::child_view(const EvalContext& ctx, int p,
                                         NodeId v) const {
  const PartStatic& pd = *parts_[static_cast<std::size_t>(p)];
  kernel::ChildView cv;
  if (ctx.tree_.is_tip(v)) {
    cv.codes =
        pd.taxon_codes[ctx.taxon_of_tip_[static_cast<std::size_t>(v)]].data();
    cv.indicators = pd.indicators.data();
  } else {
    const std::size_t inner =
        static_cast<std::size_t>(v - ctx.tree_.tip_count());
    const EvalContext::PartDyn& dy = *ctx.dyn_[static_cast<std::size_t>(p)];
    cv.clv = dy.clv_ptr[inner];
    cv.scale = dy.scale_ptr[inner];
  }
  return cv;
}

void EngineCore::ensure_clv(EvalContext& ctx, NodeId v, EdgeId via,
                            bool need_all, const std::vector<int>& scope,
                            Command& cmd) {
  if (ctx.tree_.is_tip(v)) return;
  const std::size_t inner = static_cast<std::size_t>(v - ctx.tree_.tip_count());
  const bool flip = ctx.orient_[static_cast<std::size_t>(v)] != via;

  std::vector<int> rec;
  if (flip) {
    rec.resize(parts_.size());
    for (std::size_t p = 0; p < parts_.size(); ++p) rec[p] = static_cast<int>(p);
  } else {
    const auto consider = [&](int p) {
      if (ctx.clv_epoch_[inner][static_cast<std::size_t>(p)] !=
          ctx.model_epoch_[static_cast<std::size_t>(p)])
        rec.push_back(p);
    };
    if (need_all) {
      for (std::size_t p = 0; p < parts_.size(); ++p)
        consider(static_cast<int>(p));
    } else {
      for (int p : scope) consider(p);
    }
  }
  if (rec.empty()) return;

  const bool rec_all = rec.size() == parts_.size();
  for (EdgeId e : ctx.tree_.edges_of(v)) {
    if (e == via) continue;
    ensure_clv(ctx, ctx.tree_.other_end(e, v), e, rec_all, rec, cmd);
  }
  add_newview_op(ctx, v, via, rec, cmd);
}

void EngineCore::add_newview_op(EvalContext& ctx, NodeId v, EdgeId via,
                                const std::vector<int>& parts, Command& cmd) {
  // Overlay contexts write into leased pool slots, never into the parent's
  // shared buffers; redirect each written (node, partition) now, at assembly
  // time, so execution-side pointer reads are stable.
  const std::size_t vinner =
      static_cast<std::size_t>(v - ctx.tree_.tip_count());
  for (int p : parts) ctx.ensure_owned_clv(p, vinner);

  Command::Op op;
  op.node = v;
  op.toward = via;
  for (EdgeId e : ctx.tree_.edges_of(v)) {
    if (e == via) continue;
    if (op.c1 == kNoId) {
      op.c1 = ctx.tree_.other_end(e, v);
      op.e1 = e;
    } else {
      op.c2 = ctx.tree_.other_end(e, v);
      op.e2 = e;
    }
  }
  op.parts = parts;
  op.epochs.reserve(parts.size());
  for (int p : parts)
    op.epochs.push_back(ctx.model_epoch_[static_cast<std::size_t>(p)]);

  // Reserve space for the per-category transition matrices of both child
  // edges and queue their construction (plus transposes / tip lookup
  // tables) for the flush's parallel pre-stage.
  for (int p : parts) {
    for (int child = 0; child < 2; ++child) {
      const EdgeId e = child == 0 ? op.e1 : op.e2;
      const NodeId cn = child == 0 ? op.c1 : op.c2;
      std::size_t off = 0;
      const double* tt = queue_edge_tables(ctx, cmd, p, e, cn, off);
      (child == 0 ? op.pmat1 : op.pmat2).push_back(off);
      (child == 0 ? op.tt1 : op.tt2).push_back(tt);
    }
  }
  cmd.ops.push_back(std::move(op));
}

void EngineCore::assemble_sumtable(EvalContext& ctx, Command& cmd, EdgeId edge,
                                   const std::vector<int>& parts) {
  const Tree& tree = ctx.tree_;
  const NodeId u = tree.edge(edge).a;
  const NodeId v = tree.edge(edge).b;
  cmd.do_sumtable = true;
  cmd.sum_edge = edge;
  cmd.sum_parts = parts;
  for (int p : parts) refresh_invariant(ctx, p);
  for (int p : parts) {
    const EvalContext::PartDyn& dy = *ctx.dyn_[static_cast<std::size_t>(p)];
    const PartStatic& pd = *parts_[static_cast<std::size_t>(p)];
    if (!use_generic_) {
      const std::size_t off = cmd.symt.size();
      cmd.sum_symt.push_back(off);
      cmd.symt.resize(off + static_cast<std::size_t>(pd.states) *
                                static_cast<std::size_t>(pd.states));
      dispatch_states(pd.states, [&]<int S>() {
        kernel::transpose_pmats<S>(dy.model.model().sym_transform().data(), 1,
                                   cmd.symt.data() + off);
      });
    } else {
      cmd.sum_symt.push_back(0);
    }
    cmd.sum_ttu.push_back(
        !use_generic_ && tree.is_tip(u) ? sym_table_for(ctx, p) : nullptr);
    cmd.sum_ttv.push_back(
        !use_generic_ && tree.is_tip(v) ? sym_table_for(ctx, p) : nullptr);
  }
}

void EngineCore::refresh_invariant(EvalContext& ctx, int p) {
  EvalContext::PartDyn& dy = *ctx.dyn_[static_cast<std::size_t>(p)];
  if (!dy.model.invariant_sites()) return;
  PartStatic& pd = *parts_[static_cast<std::size_t>(p)];
  const std::uint64_t epoch = ctx.model_epoch_[static_cast<std::size_t>(p)];
  if (!dy.inv_contrib.empty() && dy.inv_epoch == epoch &&
      dy.inv_gen == pd.inv_mask_gen)
    return;
  const std::vector<StateMask>& masks = pd.invariant_masks();
  const auto& freqs = dy.model.model().freqs();
  const double p_inv = dy.model.p_inv();
  dy.inv_contrib.resize(pd.patterns);
  for (std::size_t i = 0; i < pd.patterns; ++i) {
    double s = 0.0;
    for (int a = 0; a < pd.states; ++a)
      if (masks[i] & (StateMask{1} << a)) s += freqs[static_cast<std::size_t>(a)];
    dy.inv_contrib[i] = p_inv * s;
  }
  dy.inv_epoch = epoch;
  dy.inv_gen = pd.inv_mask_gen;
  // The NR fold needs the root scale counts alongside (captured by the
  // sumtable pass); size the buffer here so execution never allocates.
  dy.sum_scale.resize(pd.patterns);
}

void EngineCore::build_request(EvalContext& ctx, const EvalRequest& req,
                               Command& cmd) {
  const Tree& tree = ctx.tree_;
  switch (req.kind) {
    case EvalRequest::Kind::kEvaluate: {
      const NodeId u = tree.edge(req.edge).a;
      const NodeId v = tree.edge(req.edge).b;
      ensure_clv(ctx, u, req.edge, false, req.partitions, cmd);
      ensure_clv(ctx, v, req.edge, false, req.partitions, cmd);
      cmd.do_eval = true;
      cmd.eval_edge = req.edge;
      cmd.eval_parts = req.partitions;
      for (int p : req.partitions) refresh_invariant(ctx, p);
      for (int p : req.partitions) {
        // The root-edge matrix applies to the v side; a tip there gets a
        // table.
        std::size_t off = 0;
        const double* tt = queue_edge_tables(ctx, cmd, p, req.edge, v, off);
        cmd.eval_pmat.push_back(off);
        cmd.eval_tt.push_back(tt);
      }
      break;
    }

    case EvalRequest::Kind::kSiteLnl: {
      const NodeId u = tree.edge(req.edge).a;
      const NodeId v = tree.edge(req.edge).b;
      const int p = req.site_partition;
      const std::vector<int> one{p};
      const PartStatic& pd = *parts_[static_cast<std::size_t>(p)];
      // Validate BEFORE any assembly: queue_edge_tables stamps reserved
      // tip-table entries into the shared LRU, and a throw after that would
      // leave stamped keys whose contents are never built.
      if (req.sites_out.size() != pd.patterns)
        throw std::invalid_argument("site_loglikelihoods: output size " +
                                    std::to_string(req.sites_out.size()) +
                                    " != pattern count " +
                                    std::to_string(pd.patterns));
      ensure_clv(ctx, u, req.edge, false, one, cmd);
      ensure_clv(ctx, v, req.edge, false, one, cmd);
      cmd.do_sites = true;
      cmd.eval_edge = req.edge;
      refresh_invariant(ctx, p);
      cmd.sites_part = p;
      cmd.sites_out = req.sites_out.data();
      std::size_t off = 0;
      cmd.sites_tt = queue_edge_tables(ctx, cmd, p, req.edge, v, off);
      cmd.sites_pmat = off;
      break;
    }

    case EvalRequest::Kind::kPrepareRoot: {
      const NodeId u = tree.edge(req.edge).a;
      const NodeId v = tree.edge(req.edge).b;
      ensure_clv(ctx, u, req.edge, true, req.partitions, cmd);
      ensure_clv(ctx, v, req.edge, true, req.partitions, cmd);
      break;
    }

    case EvalRequest::Kind::kSumtable: {
      if (ctx.root_edge_ == kNoId)
        throw std::logic_error("compute_sumtable: no root edge prepared");
      const NodeId u = tree.edge(ctx.root_edge_).a;
      const NodeId v = tree.edge(ctx.root_edge_).b;
      ensure_clv(ctx, u, ctx.root_edge_, false, req.partitions, cmd);
      ensure_clv(ctx, v, ctx.root_edge_, false, req.partitions, cmd);
      assemble_sumtable(ctx, cmd, ctx.root_edge_, req.partitions);
      break;
    }

    case EvalRequest::Kind::kNrDerivatives: {
      // Validate BEFORE any assembly (see the kSiteLnl comment).
      if (req.lens.size() != req.partitions.size() ||
          req.d1.size() != req.partitions.size() ||
          req.d2.size() != req.partitions.size())
        throw std::invalid_argument("nr_derivatives: size mismatch");
      if (req.sum_first) {
        // Fused opener (EvalRequest::sumtable_nr): full prepare-root at
        // req.edge plus the sumtable pass ride in this same command, ahead
        // of the derivative pass below.
        const NodeId u = tree.edge(req.edge).a;
        const NodeId v = tree.edge(req.edge).b;
        ensure_clv(ctx, u, req.edge, true, req.partitions, cmd);
        ensure_clv(ctx, v, req.edge, true, req.partitions, cmd);
        assemble_sumtable(ctx, cmd, req.edge, req.partitions);
      } else if (!ctx.sumtable_valid_) {
        throw std::logic_error("nr_derivatives: sumtable not computed");
      }
      cmd.do_nr = true;
      cmd.nr_parts = req.partitions;
      for (int p : req.partitions) refresh_invariant(ctx, p);
      for (std::size_t k = 0; k < req.partitions.size(); ++k) {
        const int p = req.partitions[k];
        const EvalContext::PartDyn& dy = *ctx.dyn_[static_cast<std::size_t>(p)];
        const PartStatic& pd = *parts_[static_cast<std::size_t>(p)];
        // Reserve the exp/lambda tables and defer their (exp-heavy) fill to
        // the flush's parallel pre-stage — a kNrScratch PmatTask, priced
        // and routed exactly like the transition-matrix tasks.
        const std::size_t n = static_cast<std::size_t>(pd.cats) *
                              static_cast<std::size_t>(pd.states);
        PmatTask t;
        t.kind = PmatTask::Kind::kNrScratch;
        t.part = p;
        t.model = &dy.model;
        t.blen = std::clamp(req.lens[k], kBranchMin, kBranchMax);
        t.off = cmd.scratch.size();
        t.off2 = t.off + n;
        cmd.nr_exp.push_back(t.off);
        cmd.nr_lam.push_back(t.off2);
        cmd.scratch.resize(t.off + 2 * n);
        cmd.pmat_tasks.push_back(t);
      }
      break;
    }
  }

  // The transposed-matrix buffer mirrors pmats offset-for-offset; only
  // inner-endpoint regions are written (by transpose tasks) or read.
  if (!use_generic_) cmd.pmats_t.resize(cmd.pmats.size());
}

// --- execution ---------------------------------------------------------------

void EngineCore::run_pmat_task(Pending& item, const PmatTask& t,
                               Matrix& pm) const {
  Command& cmd = item.cmd;
  const PartStatic& pd = *parts_[static_cast<std::size_t>(t.part)];
  if (t.kind == PmatTask::Kind::kNrScratch) {
    // Same expression order as the old master-side loops, so the tables —
    // and with them every derivative — are bit-identical. Non-uniform
    // category weights fold into the exp table here (each f/f1/f2 term
    // carries exactly one factor of e), which keeps the kernels' inner
    // loops weight-free; the uniform path stays verbatim.
    const auto& rates = t.model->category_rates();
    const auto& lambda = t.model->model().eigenvalues();
    const bool weighted = !t.model->uniform_categories();
    const auto& cw = t.model->category_weights();
    double* ex = cmd.scratch.data() + t.off;
    double* lam = cmd.scratch.data() + t.off2;
    std::size_t i = 0;
    for (int c = 0; c < pd.cats; ++c)
      for (int s = 0; s < pd.states; ++s, ++i) {
        ex[i] = std::exp(lambda[static_cast<std::size_t>(s)] *
                         rates[static_cast<std::size_t>(c)] * t.blen);
        if (weighted) ex[i] *= cw[static_cast<std::size_t>(c)];
        lam[i] = lambda[static_cast<std::size_t>(s)] *
                 rates[static_cast<std::size_t>(c)];
      }
    return;
  }
  const std::size_t ss = static_cast<std::size_t>(pd.states) *
                         static_cast<std::size_t>(pd.states);
  double* dst = cmd.pmats.data() + t.off;
  const auto& rates = t.model->category_rates();
  for (int c = 0; c < pd.cats; ++c) {
    t.model->model().transition_matrix(
        t.blen * rates[static_cast<std::size_t>(c)], pm);
    std::copy(pm.data(), pm.data() + ss,
              dst + static_cast<std::size_t>(c) * ss);
  }
  if (t.transpose) {
    dispatch_states(pd.states, [&]<int S>() {
      kernel::transpose_pmats<S>(dst, pd.cats, cmd.pmats_t.data() + t.off);
    });
  }
  if (t.tip_dst != nullptr) {
    dispatch_states(pd.states, [&]<int S>() {
      kernel::build_tip_table<S>(dst, pd.cats, pd.indicators.data(),
                                 pd.n_codes, t.tip_dst);
    });
  }
}

double EngineCore::modeled_command_cost(const Command& cmd) const {
  const auto part_cost = [&](int p) {
    const PartStatic& pd = *parts_[static_cast<std::size_t>(p)];
    return static_cast<double>(pd.patterns) *
           static_cast<double>(pd.states) * static_cast<double>(pd.states) *
           static_cast<double>(pd.cats);
  };
  double c = 0.0;
  for (const auto& op : cmd.ops)
    for (int p : op.parts) c += part_cost(p);
  for (int p : cmd.eval_parts) c += part_cost(p);
  for (int p : cmd.sum_parts) c += part_cost(p);
  for (int p : cmd.nr_parts) c += part_cost(p);
  if (cmd.do_sites) c += part_cost(cmd.sites_part);
  return c;
}

void EngineCore::run_item(const Pending& item, int tid,
                          const WorkSchedule& sched, const CoreShard* shard) {
  EvalContext& ctx = *item.ctx;
  const Command& cmd = item.cmd;
  const int tips = ctx.tree_.tip_count();
  const int T = threads();
  // Specialized kernels go through the runtime-selected backend table (the
  // generic reference path below stays a direct template call).
  const kernel::KernelTable& kt = kernel::active_kernels();

  // Sharded execution: `tid` is a VIRTUAL tid of the global schedule, and
  // this shard runs only the (partition, tid) pairs it owns. The skipped
  // pairs — including their reduction-row writes — are executed by exactly
  // one sibling shard, so every row is written once per command and the
  // master's fold sees the same values as a flat single-team run.
  const auto skip = [&](int p) { return shard != nullptr && !shard->owns(p, tid); };

  // Span lookup for this command. Commands scoped to a single partition
  // would run serially under the global cost-split strategies (a partition
  // whose cost share is below 1/T belongs entirely to one thread), so they
  // fall back to an even block split; `tmp` holds the synthesized span.
  WorkSpan tmp;
  const auto spans_of = [&](int p) -> std::span<const WorkSpan> {
    if (p != item.solo_part) return sched.spans(tid, p);
    tmp = block_span(p, parts_[static_cast<std::size_t>(p)]->patterns, tid, T);
    if (tmp.begin >= tmp.end) return {};
    return {&tmp, 1};
  };

  // 1. Traversal ops, in order (no intra-traversal barrier needed: pattern
  //    i of a parent CLV depends only on pattern i of the child CLVs, and a
  //    thread owns the same spans of a partition for every op of the batch).
  for (const auto& op : cmd.ops) {
    const std::size_t inner = static_cast<std::size_t>(op.node - tips);
    for (std::size_t k = 0; k < op.parts.size(); ++k) {
      const int p = op.parts[k];
      if (skip(p)) continue;
      const PartStatic& pd = *parts_[static_cast<std::size_t>(p)];
      EvalContext::PartDyn& dy = *ctx.dyn_[static_cast<std::size_t>(p)];
      kernel::ChildView v1 = child_view(ctx, p, op.c1);
      kernel::ChildView v2 = child_view(ctx, p, op.c2);
      if (!use_generic_) {
        v1.tip_table = op.tt1[k];
        v2.tip_table = op.tt2[k];
      }
      dispatch_states(pd.states, [&]<int S>() {
        for (const WorkSpan& s : spans_of(p)) {
          if (use_generic_) {
            kernel::newview_slice<S>(s.begin, s.end, s.step, pd.cats, v1, v2,
                                     cmd.pmats.data() + op.pmat1[k],
                                     cmd.pmats.data() + op.pmat2[k],
                                     dy.clv_ptr[inner], dy.scale_ptr[inner]);
          } else {
            kt.newview<S>()(s.begin, s.end, s.step, pd.cats, v1, v2,
                            cmd.pmats.data() + op.pmat1[k],
                            cmd.pmats.data() + op.pmat2[k],
                            cmd.pmats_t.data() + op.pmat1[k],
                            cmd.pmats_t.data() + op.pmat2[k],
                            dy.clv_ptr[inner], dy.scale_ptr[inner]);
          }
        }
      });
    }
  }

  // 2. Optional fused evaluation at the root edge.
  if (cmd.do_eval) {
    const NodeId u = ctx.tree_.edge(cmd.eval_edge).a;
    const NodeId v = ctx.tree_.edge(cmd.eval_edge).b;
    for (std::size_t k = 0; k < cmd.eval_parts.size(); ++k) {
      const int p = cmd.eval_parts[k];
      if (skip(p)) continue;
      const PartStatic& pd = *parts_[static_cast<std::size_t>(p)];
      const EvalContext::PartDyn& dy = *ctx.dyn_[static_cast<std::size_t>(p)];
      const kernel::ChildView vu = child_view(ctx, p, u);
      kernel::ChildView vv = child_view(ctx, p, v);
      if (!use_generic_) vv.tip_table = cmd.eval_tt[k];
      kernel::RateView rv;
      if (!dy.model.uniform_categories())
        rv.cat_w = dy.model.category_weights().data();
      if (dy.model.invariant_sites()) rv.inv = dy.inv_contrib.data();
      double partial = 0.0;
      dispatch_states(pd.states, [&]<int S>() {
        for (const WorkSpan& s : spans_of(p)) {
          if (use_generic_) {
            partial += kernel::evaluate_slice<S>(
                s.begin, s.end, s.step, pd.cats, vu, vv,
                cmd.pmats.data() + cmd.eval_pmat[k],
                dy.model.model().freqs().data(), dy.weights.data(), rv);
          } else {
            partial += kt.evaluate<S>()(
                s.begin, s.end, s.step, pd.cats, vu, vv,
                cmd.pmats.data() + cmd.eval_pmat[k],
                cmd.pmats_t.data() + cmd.eval_pmat[k],
                dy.model.model().freqs().data(), dy.weights.data(), rv);
          }
        }
      });
      // Threads without spans of p still publish their (zero) partial.
      ctx.red_lnl_[static_cast<std::size_t>(tid) * ctx.red_stride_ +
                   static_cast<std::size_t>(p)] = partial;
    }
  }

  // 2b. Optional per-site evaluation for one partition.
  if (cmd.do_sites && !skip(cmd.sites_part)) {
    const NodeId u = ctx.tree_.edge(cmd.eval_edge).a;
    const NodeId v = ctx.tree_.edge(cmd.eval_edge).b;
    const int p = cmd.sites_part;
    const PartStatic& pd = *parts_[static_cast<std::size_t>(p)];
    const EvalContext::PartDyn& dy = *ctx.dyn_[static_cast<std::size_t>(p)];
    const kernel::ChildView vu = child_view(ctx, p, u);
    kernel::ChildView vv = child_view(ctx, p, v);
    if (!use_generic_) vv.tip_table = cmd.sites_tt;
    kernel::RateView rv;
    if (!dy.model.uniform_categories())
      rv.cat_w = dy.model.category_weights().data();
    if (dy.model.invariant_sites()) rv.inv = dy.inv_contrib.data();
    dispatch_states(pd.states, [&]<int S>() {
      for (const WorkSpan& s : spans_of(p)) {
        if (use_generic_) {
          kernel::evaluate_sites_slice<S>(
              s.begin, s.end, s.step, pd.cats, vu, vv,
              cmd.pmats.data() + cmd.sites_pmat,
              dy.model.model().freqs().data(), cmd.sites_out, rv);
        } else {
          kt.evaluate_sites<S>()(
              s.begin, s.end, s.step, pd.cats, vu, vv,
              cmd.pmats.data() + cmd.sites_pmat,
              cmd.pmats_t.data() + cmd.sites_pmat,
              dy.model.model().freqs().data(), cmd.sites_out, rv);
        }
      }
    });
  }

  // 3. Optional sumtable pass (at the command's recorded root edge — for a
  //    fused opener the context's root_edge_ only moves at finalize).
  if (cmd.do_sumtable) {
    const NodeId u = ctx.tree_.edge(cmd.sum_edge).a;
    const NodeId v = ctx.tree_.edge(cmd.sum_edge).b;
    for (std::size_t k = 0; k < cmd.sum_parts.size(); ++k) {
      const int p = cmd.sum_parts[k];
      if (skip(p)) continue;
      const PartStatic& pd = *parts_[static_cast<std::size_t>(p)];
      EvalContext::PartDyn& dy = *ctx.dyn_[static_cast<std::size_t>(p)];
      kernel::ChildView vu = child_view(ctx, p, u);
      kernel::ChildView vv = child_view(ctx, p, v);
      if (!use_generic_) {
        vu.tip_table = cmd.sum_ttu[k];
        vv.tip_table = cmd.sum_ttv[k];
      }
      dispatch_states(pd.states, [&]<int S>() {
        for (const WorkSpan& s : spans_of(p)) {
          if (use_generic_) {
            kernel::sumtable_slice<S>(s.begin, s.end, s.step, pd.cats, vu, vv,
                                      dy.model.model().sym_transform().data(),
                                      dy.sumtable.data());
          } else {
            kt.sumtable<S>()(s.begin, s.end, s.step, pd.cats, vu, vv,
                             dy.model.model().sym_transform().data(),
                             cmd.symt.data() + cmd.sum_symt[k],
                             dy.sumtable.data());
          }
        }
      });
      // +I models: capture the root scale counts over the same spans — the
      // NR fold lifts the (unscaled) invariant term into the sumtable's
      // scaled units with them. Threads write disjoint spans.
      if (dy.model.invariant_sites()) {
        for (const WorkSpan& s : spans_of(p))
          for (std::size_t i = s.begin; i < s.end; i += s.step)
            dy.sum_scale[i] = kernel::child_scale(vu, vv, i);
      }
    }
  }

  // 4. Optional NR derivative pass.
  if (cmd.do_nr) {
    for (std::size_t k = 0; k < cmd.nr_parts.size(); ++k) {
      const int p = cmd.nr_parts[k];
      if (skip(p)) continue;
      const PartStatic& pd = *parts_[static_cast<std::size_t>(p)];
      const EvalContext::PartDyn& dy = *ctx.dyn_[static_cast<std::size_t>(p)];
      kernel::RateView rv;  // weights ride in the exp table; only +I here
      if (dy.model.invariant_sites()) {
        rv.inv = dy.inv_contrib.data();
        rv.scale = dy.sum_scale.data();
      }
      double d1 = 0.0, d2 = 0.0;
      dispatch_states(pd.states, [&]<int S>() {
        for (const WorkSpan& s : spans_of(p)) {
          double s1 = 0.0, s2 = 0.0;
          if (use_generic_)
            kernel::nr_slice<S>(s.begin, s.end, s.step, pd.cats,
                                dy.sumtable.data(),
                                cmd.scratch.data() + cmd.nr_exp[k],
                                cmd.scratch.data() + cmd.nr_lam[k],
                                dy.weights.data(), &s1, &s2, rv);
          else
            kt.nr<S>()(s.begin, s.end, s.step, pd.cats, dy.sumtable.data(),
                       cmd.scratch.data() + cmd.nr_exp[k],
                       cmd.scratch.data() + cmd.nr_lam[k],
                       dy.weights.data(), &s1, &s2, rv);
          d1 += s1;
          d2 += s2;
        }
      });
      ctx.red_d1_[static_cast<std::size_t>(tid) * ctx.red_stride_ +
                  static_cast<std::size_t>(p)] = d1;
      ctx.red_d2_[static_cast<std::size_t>(tid) * ctx.red_stride_ +
                  static_cast<std::size_t>(p)] = d2;
    }
  }
}

void EngineCore::execute_batch(std::span<Pending> items) {
  // Items whose command carries no work (a prepare_root that found every
  // CLV already oriented) cost no synchronization, exactly like the
  // monolithic engine's prepare_root fast path.
  std::vector<Pending*> live;
  live.reserve(items.size());
  for (Pending& item : items) {
    if (item.ctx == nullptr) continue;  // context died before the flush
    const Command& cmd = item.cmd;
    if (!cmd.ops.empty() || cmd.do_eval || cmd.do_sites || cmd.do_sumtable ||
        cmd.do_nr)
      live.push_back(&item);
  }
  if (live.empty()) return;

  ++stats_.commands;
  for (const Pending* item : live) {
    ++stats_.requests;
    for (const auto& op : item->cmd.ops) stats_.newview_ops += op.parts.size();
    if (item->cmd.do_eval) stats_.evaluations += item->cmd.eval_parts.size();
    if (item->cmd.do_nr) stats_.nr_iterations += item->cmd.nr_parts.size();
  }

  // Resolve the cached work assignments on the master before broadcasting;
  // inside the command every thread reads them concurrently (const access).
  // Pure NR items (a derivative pass with no newview/eval/sumtable in the
  // region) run under the NR-calibrated schedule; everything else — and in
  // particular every fused sumtable_nr command, whose NR spans must read
  // exactly the sumtable patterns the same thread wrote — stays on the
  // primary schedule. The two only differ after a kMeasured calibration.
  const WorkSchedule& sched = schedule();
  const WorkSchedule& nr_sched = schedule_nr();
  const auto sched_of = [&](const Command& cmd) -> const WorkSchedule& {
    const bool pure_nr = cmd.do_nr && !cmd.do_sumtable && !cmd.do_eval &&
                         !cmd.do_sites && cmd.ops.empty();
    return pure_nr ? nr_sched : sched;
  };

  // Single-partition fallback (see run_item): computed per item, since a
  // batch mixes commands of different scope. Assignments may differ freely
  // between items (each item touches only its own context's buffers); only
  // ops *within* one item must share an assignment, which both paths honor.
  for (Pending* itemp : live) {
    Pending& item = *itemp;
    item.solo_part = -1;
    if (sched.strategy() != SchedulingStrategy::kCyclic &&
        sched.strategy() != SchedulingStrategy::kBlock && threads() > 1) {
      int solo = -1;
      const auto fold = [&](int p) {
        if (solo == -1 || solo == p) solo = p;
        else solo = -2;  // more than one partition involved
      };
      const Command& cmd = item.cmd;
      for (const auto& op : cmd.ops)
        for (int p : op.parts) fold(p);
      for (int p : cmd.eval_parts) fold(p);
      for (int p : cmd.sum_parts) fold(p);
      for (int p : cmd.nr_parts) fold(p);
      if (cmd.do_sites) fold(cmd.sites_part);
      item.solo_part = solo < 0 ? -1 : solo;
    }
  }

  // Gather the deferred table-construction tasks of every live item. They
  // used to serialize on the master during assembly; here the whole team
  // builds them as the region's first phase (cyclically split — tasks are
  // independent and write disjoint buffers), separated from the kernels by
  // an in-region barrier so no second synchronization event is paid.
  struct TaskRef {
    Pending* item;
    const PmatTask* task;
  };
  std::vector<TaskRef> tasks;
  for (Pending* itemp : live)
    for (const PmatTask& t : itemp->cmd.pmat_tasks)
      tasks.push_back({itemp, &t});

  const int T = threads();

  if (shards_.size() == 1) {
    // Flat single-team engine: the classic one-region flush, unchanged.
    // Pick the item-to-thread mapping (see BatchExecMode): coarse assigns
    // whole items to single threads once items outnumber the team 2:1 —
    // each owner replays the fine schedule's per-thread spans, so results
    // are bit-identical to fine execution in every mode.
    bool coarse = false;
    if (T > 1) {
      coarse = batch_exec_ == BatchExecMode::kCoarse
                   ? live.size() > 1
                   : batch_exec_ == BatchExecMode::kAuto &&
                         live.size() >= 2 * static_cast<std::size_t>(T);
    }
    std::vector<int> owner;
    if (coarse) {
      std::vector<double> cost(live.size());
      for (std::size_t i = 0; i < live.size(); ++i)
        cost[i] = modeled_command_cost(live[i]->cmd);
      owner = lpt_assign(cost, T);
      ++stats_.coarse_commands;
    }

    // Shape of the flush entering the parallel region, for the watchdog's
    // diagnostic dump (describe_active_flush reads these on the monitor
    // thread while the command is in flight).
    active_items_ = live.size();
    active_tasks_ = tasks.size();
    active_coarse_ = coarse;
    active_shards_ = 1;
    ++stats_.shard_team_syncs;

    std::atomic<int> phase_done{0};
    team_->run([&](int tid) {
      if (!tasks.empty()) {
        Matrix pm;
        for (std::size_t i = static_cast<std::size_t>(tid); i < tasks.size();
             i += static_cast<std::size_t>(T))
          run_pmat_task(*tasks[i].item, *tasks[i].task, pm);
        // Barrier: phase 2's kernels read what the tasks wrote. One fresh
        // atomic per flush; acquire/release publishes the buffers.
        phase_done.fetch_add(1, std::memory_order_acq_rel);
        while (phase_done.load(std::memory_order_acquire) < T)
          std::this_thread::yield();
      }
      if (coarse) {
        for (std::size_t i = 0; i < live.size(); ++i) {
          if (owner[i] != tid) continue;
          for (int vt = 0; vt < T; ++vt)
            run_item(*live[i], vt, sched_of(live[i]->cmd));
        }
      } else {
        for (const Pending* item : live)
          run_item(*item, tid, sched_of(item->cmd));
      }
    });
  } else {
    // Sharded fan-out: every engaged shard team executes its owned
    // (partition, vt) slices of ALL live items concurrently; the master
    // starts the detached teams, runs its own (shard 0) share inline, and
    // joins the rest in fixed index order. Reduction rows are written by
    // exactly one shard each, and the fixed-order fold in finalize() is
    // untouched — the two-level reduction is deterministic and
    // bit-identical to the flat engine at every shard count.

    // A shard is engaged iff it owns a slice of any partition the flush
    // references; uninvolved shard teams are not woken at all (this is what
    // keeps single-partition NR ping-pong on one team).
    std::vector<char> part_ref(parts_.size(), 0);
    for (const Pending* item : live) {
      const Command& cmd = item->cmd;
      for (const auto& op : cmd.ops)
        for (int p : op.parts) part_ref[static_cast<std::size_t>(p)] = 1;
      for (int p : cmd.eval_parts) part_ref[static_cast<std::size_t>(p)] = 1;
      for (int p : cmd.sum_parts) part_ref[static_cast<std::size_t>(p)] = 1;
      for (int p : cmd.nr_parts) part_ref[static_cast<std::size_t>(p)] = 1;
      if (cmd.do_sites) part_ref[static_cast<std::size_t>(cmd.sites_part)] = 1;
    }

    struct ShardExec {
      EngineCore* core = nullptr;
      CoreShard* shard = nullptr;
      const std::vector<Pending*>* live = nullptr;
      const std::vector<const WorkSchedule*>* item_sched = nullptr;
      std::vector<TaskRef> tasks;  // this shard's pre-stage share
      bool have_tasks = false;     // ANY shard has tasks -> global barrier
      std::atomic<int>* phase_done = nullptr;
      int barrier_total = 0;
      bool coarse = false;
      std::vector<int> owner;  // per live item, owning local thread
    };

    // Resolve each item's schedule once (pointer-stable member caches).
    std::vector<const WorkSchedule*> item_sched(live.size());
    for (std::size_t i = 0; i < live.size(); ++i)
      item_sched[i] = &sched_of(live[i]->cmd);

    std::atomic<int> phase_done{0};
    std::vector<ShardExec> exec(shards_.size());
    std::vector<CoreShard*> engaged;
    int barrier_total = 0;
    for (std::size_t s = 0; s < shards_.size(); ++s) {
      CoreShard& sh = *shards_[s];
      bool hit = false;
      for (const ShardSlice& slice : sh.slices())
        if (part_ref[static_cast<std::size_t>(slice.part)]) {
          hit = true;
          break;
        }
      if (!hit) continue;
      engaged.push_back(&sh);
      barrier_total += sh.threads();
      ShardExec& ex = exec[s];
      ex.core = this;
      ex.shard = &sh;
      ex.live = &live;
      ex.item_sched = &item_sched;
      ex.phase_done = &phase_done;
      // Pre-stage tasks go to the partition's primary owner shard (which is
      // necessarily engaged: its partition is referenced). Sub-shards of a
      // split partition read the tables the primary built, so the pre-stage
      // barrier spans ALL engaged teams, not each team alone.
      for (const TaskRef& t : tasks)
        if (plan_.primary_owner(t.task->part) == static_cast<int>(s))
          ex.tasks.push_back(t);
    }
    for (CoreShard* sh : engaged) {
      ShardExec& ex = exec[static_cast<std::size_t>(sh->index())];
      ex.have_tasks = !tasks.empty();
      ex.barrier_total = barrier_total;
      // Per-shard coarse decision against the LOCAL team size, pricing each
      // item by the shard's cached slice view of the schedule. Replayed vts
      // are the same either way, so the mode never changes results.
      const int ts = sh->threads();
      bool coarse = false;
      if (ts > 1) {
        coarse = batch_exec_ == BatchExecMode::kCoarse
                     ? live.size() > 1
                     : batch_exec_ == BatchExecMode::kAuto &&
                           live.size() >= 2 * static_cast<std::size_t>(ts);
      }
      if (coarse) {
        std::vector<double> cost(live.size());
        for (std::size_t i = 0; i < live.size(); ++i) {
          const Command& cmd = live[i]->cmd;
          double c = 0.0;
          for (const auto& op : cmd.ops)
            for (int p : op.parts) c += sh->slice_cost(p);
          for (int p : cmd.eval_parts) c += sh->slice_cost(p);
          for (int p : cmd.sum_parts) c += sh->slice_cost(p);
          for (int p : cmd.nr_parts) c += sh->slice_cost(p);
          if (cmd.do_sites) c += sh->slice_cost(cmd.sites_part);
          cost[i] = c;
        }
        ex.owner = lpt_assign(cost, ts);
        ex.coarse = true;
      }
    }
    bool any_coarse = false;
    for (CoreShard* sh : engaged)
      any_coarse |= exec[static_cast<std::size_t>(sh->index())].coarse;
    if (any_coarse) ++stats_.coarse_commands;

    active_items_ = live.size();
    active_tasks_ = tasks.size();
    active_coarse_ = any_coarse;
    active_shards_ = static_cast<int>(engaged.size());
    stats_.shard_team_syncs += engaged.size();
    if (engaged.size() > 1) ++stats_.shard_fanouts;

    // One shard-team thread's share of the flush. `lt` is a LOCAL thread id
    // of its team; it executes the virtual tids vt with vt % team_size ==
    // lt, filtered to the shard's owned (partition, vt) pairs inside
    // run_item.
    const ThreadTeam::RawFn entry = [](void* ctxp, int lt) {
      ShardExec& ex = *static_cast<ShardExec*>(ctxp);
      EngineCore& core = *ex.core;
      const CoreShard* sh = ex.shard;
      const int ts = sh->threads();
      if (ex.have_tasks) {
        Matrix pm;
        for (std::size_t i = static_cast<std::size_t>(lt); i < ex.tasks.size();
             i += static_cast<std::size_t>(ts))
          core.run_pmat_task(*ex.tasks[i].item, *ex.tasks[i].task, pm);
        // Cross-shard barrier: kernels of ANY shard may read tables a
        // sibling shard's pre-stage built (split partitions), so all
        // engaged threads rendezvous before phase 2.
        ex.phase_done->fetch_add(1, std::memory_order_acq_rel);
        while (ex.phase_done->load(std::memory_order_acquire) <
               ex.barrier_total)
          std::this_thread::yield();
      }
      const std::vector<Pending*>& live_items = *ex.live;
      const std::vector<const WorkSchedule*>& isched = *ex.item_sched;
      const int T = core.threads();
      if (ex.coarse) {
        for (std::size_t i = 0; i < live_items.size(); ++i) {
          if (ex.owner[i] != lt) continue;
          for (int vt = 0; vt < T; ++vt)
            core.run_item(*live_items[i], vt, *isched[i], sh);
        }
      } else {
        for (std::size_t i = 0; i < live_items.size(); ++i)
          for (int vt = lt; vt < T; vt += ts)
            core.run_item(*live_items[i], vt, *isched[i], sh);
      }
    };

    // Instrumentation snapshot of the engaged teams, folded into the
    // aggregate after the joins (sync_count counts this whole fan-out as
    // ONE logical event; critical path takes the slowest concurrent team).
    struct StatSnap {
      double crit, work, imb;
    };
    std::vector<StatSnap> before(engaged.size());
    const bool instr = team_->instrumented();
    if (instr)
      for (std::size_t i = 0; i < engaged.size(); ++i) {
        const TeamStats& st = engaged[i]->team().stats();
        before[i] = {st.critical_path_seconds, st.total_work_seconds,
                     st.imbalance_seconds};
      }

    // Fixed-order fan-out: start detached teams 1..N-1, run shard 0's
    // master-inline share, join in index order. The joins transitively
    // order every shard's writes before the master's next broadcast.
    for (CoreShard* sh : engaged)
      if (sh->index() != 0)
        sh->team().start(entry, &exec[static_cast<std::size_t>(sh->index())]);
    if (!engaged.empty() && engaged.front()->index() == 0)
      team_->run(entry, &exec[0]);
    for (CoreShard* sh : engaged)
      if (sh->index() != 0) sh->team().join();

    ++agg_team_stats_.sync_count;
    if (instr) {
      double max_crit = 0.0;
      for (std::size_t i = 0; i < engaged.size(); ++i) {
        const TeamStats& st = engaged[i]->team().stats();
        max_crit =
            std::max(max_crit, st.critical_path_seconds - before[i].crit);
        agg_team_stats_.total_work_seconds +=
            st.total_work_seconds - before[i].work;
        agg_team_stats_.imbalance_seconds +=
            st.imbalance_seconds - before[i].imb;
      }
      agg_team_stats_.critical_path_seconds += max_crit;
    }
  }

  // Post-run bookkeeping: orientations and epochs for executed ops.
  for (const Pending* itemp : live) {
    EvalContext& ctx = *itemp->ctx;
    const int tips = ctx.tree_.tip_count();
    for (const auto& op : itemp->cmd.ops) {
      ctx.orient_[static_cast<std::size_t>(op.node)] = op.toward;
      const std::size_t inner = static_cast<std::size_t>(op.node - tips);
      for (std::size_t k = 0; k < op.parts.size(); ++k)
        ctx.clv_epoch_[inner][static_cast<std::size_t>(op.parts[k])] =
            op.epochs[k];
    }
  }

  ++flush_id_;
  trim_tip_tables(live.size());
}

double EngineCore::finalize(Pending& item) {
  if (item.ctx == nullptr) return 0.0;  // context died before the flush
  EvalContext& ctx = *item.ctx;
  const EvalRequest& req = item.req;
  double result = 0.0;
  switch (req.kind) {
    case EvalRequest::Kind::kEvaluate: {
      for (int p : req.partitions) {
        double lnl = 0.0;
        // Fold over ALL virtual tids, not any one team's size: under shards
        // the rows of one partition may have been written by several teams,
        // and this unchanged fixed-order fold is what makes the two-level
        // reduction shard-layout invariant.
        for (int t = 0; t < threads(); ++t)
          lnl += ctx.red_lnl_[static_cast<std::size_t>(t) * ctx.red_stride_ +
                              static_cast<std::size_t>(p)];
        ctx.last_lnl_[static_cast<std::size_t>(p)] = lnl;
        result += lnl;
      }
      ctx.root_edge_ = req.edge;
      ctx.sumtable_valid_ = false;
      break;
    }
    case EvalRequest::Kind::kSiteLnl:
    case EvalRequest::Kind::kPrepareRoot:
      ctx.root_edge_ = req.edge;
      ctx.sumtable_valid_ = false;
      break;
    case EvalRequest::Kind::kSumtable:
      ctx.sumtable_valid_ = true;
      break;
    case EvalRequest::Kind::kNrDerivatives: {
      if (req.sum_first) {
        ctx.root_edge_ = req.edge;
        ctx.sumtable_valid_ = true;
      }
      for (std::size_t k = 0; k < req.partitions.size(); ++k) {
        const int p = req.partitions[k];
        double s1 = 0.0, s2 = 0.0;
        for (int t = 0; t < threads(); ++t) {
          s1 += ctx.red_d1_[static_cast<std::size_t>(t) * ctx.red_stride_ +
                            static_cast<std::size_t>(p)];
          s2 += ctx.red_d2_[static_cast<std::size_t>(t) * ctx.red_stride_ +
                            static_cast<std::size_t>(p)];
        }
        req.d1[k] = s1;
        req.d2[k] = s2;
      }
      break;
    }
  }
  return result;
}

void EngineCore::maybe_inject_numeric_fault(Pending& item) {
  // Only overlay (copy-on-score) contexts are poisoned: their frozen parent
  // stays intact, so the search's ladder can retry from clean state and the
  // test harness can demand a bit-identical final result. The NaN lands in
  // the master's already-reduced row exactly as a non-finite CLV propagated
  // through the reduction would; quiet-NaN stores raise no FP exception, so
  // these tests also run under trapped-FP CI (PLK_FE_TRAP).
  if (item.ctx == nullptr || !item.ctx->is_overlay()) return;
  EvalContext& ctx = *item.ctx;
  const EvalRequest& req = item.req;
  if (req.partitions.empty()) return;
  const auto p = static_cast<std::size_t>(req.partitions.front());
  if (req.kind == EvalRequest::Kind::kEvaluate) {
    if (fault::should_fire(fault::Site::kWaveEvalNan))
      ctx.red_lnl_[p] = std::numeric_limits<double>::quiet_NaN();
  } else if (req.kind == EvalRequest::Kind::kNrDerivatives) {
    if (fault::should_fire(fault::Site::kWaveNrNan))
      ctx.red_d1_[p] = std::numeric_limits<double>::quiet_NaN();
  }
}

void EngineCore::collect_numeric_faults(const Pending& item,
                                        std::vector<FaultRecord>& out) const {
  // Runs after finalize(): the per-thread rows are already reduced into
  // last_lnl_ / the request's d1/d2 outputs, so the check is O(partitions)
  // per request regardless of pattern count or thread count.
  if (item.ctx == nullptr) return;
  const EvalContext& ctx = *item.ctx;
  const EvalRequest& req = item.req;
  const auto record = [&](FaultRecord::Value v, int p, EdgeId e) {
    FaultRecord r;
    r.value = v;
    r.partition = p;
    r.edge = e;
    r.request_kind = static_cast<int>(req.kind);
    r.overlay = ctx.is_overlay();
    if (shards_.size() > 1 && p >= 0) r.shard = plan_.primary_owner(p);
    out.push_back(r);
  };
  switch (req.kind) {
    case EvalRequest::Kind::kEvaluate:
      for (int p : req.partitions)
        if (!std::isfinite(ctx.last_lnl_[static_cast<std::size_t>(p)]))
          record(FaultRecord::Value::kLnl, p, req.edge);
      break;
    case EvalRequest::Kind::kNrDerivatives:
      for (std::size_t k = 0; k < req.partitions.size(); ++k) {
        const EdgeId e = req.sum_first ? req.edge : ctx.root_edge_;
        if (!std::isfinite(req.d1[k]))
          record(FaultRecord::Value::kDeriv1, req.partitions[k], e);
        if (!std::isfinite(req.d2[k]))
          record(FaultRecord::Value::kDeriv2, req.partitions[k], e);
      }
      break;
    default:
      break;  // no reduced outputs to check
  }
}

void EngineCore::raise_numeric_faults(std::span<Pending> items,
                                      std::vector<FaultRecord> records) {
  // Invalidate every context that contributed a record so that catching the
  // fault and re-issuing work recomputes from clean state instead of
  // reading poisoned CLVs.
  std::vector<FaultRecord> scratch;
  for (Pending& item : items) {
    scratch.clear();
    collect_numeric_faults(item, scratch);
    if (!scratch.empty()) item.ctx->invalidate_all();
  }
  stats_.numeric_faults += records.size();
  ++stats_.faulted_flushes;
  std::ostringstream os;
  os << "engine flush produced " << records.size()
     << " non-finite reduction(s); first: "
     << (records.front().value == FaultRecord::Value::kLnl ? "lnL"
         : records.front().value == FaultRecord::Value::kDeriv1 ? "d1"
                                                                : "d2")
     << " partition " << records.front().partition << " edge "
     << records.front().edge
     << (records.front().overlay ? " (overlay)" : "");
  if (records.front().shard >= 0)
    os << " shard " << records.front().shard;
  throw EngineFault(os.str(), std::move(records));
}

std::string EngineCore::describe_active_flush(void* self) {
  const auto* core = static_cast<const EngineCore*>(self);
  std::ostringstream os;
  os << "engine flush, " << core->active_items_.load() << " item(s), "
     << core->active_tasks_.load() << " table task(s), "
     << (core->active_coarse_.load() ? "coarse" : "fine") << " execution, "
     << core->active_shards_.load() << " shard(s) engaged";
  return os.str();
}

void EngineCore::first_touch_context(EvalContext& ctx) {
  // Zero-fill the context's no-init CLV/sumtable storage. Unsharded the
  // master fills everything — byte-identical to the classic value-init
  // allocation. Sharded, each shard's own threads fill the pattern blocks
  // backing the (partition, vt) slices the shard owns, so the backing pages
  // are first touched — and thus physically placed — on the memory node of
  // the threads that will read and write them. The fill value is zero
  // either way; results cannot depend on the touching thread.
  if (shards_.size() == 1) {
    for (auto& dyp : ctx.dyn_) {
      EvalContext::PartDyn& dy = *dyp;
      for (auto& v : dy.clv) std::fill(v.begin(), v.end(), 0.0);
      std::fill(dy.sumtable.begin(), dy.sumtable.end(), 0.0);
    }
    return;
  }

  struct TouchCtx {
    EngineCore* core;
    EvalContext* ctx;
    const CoreShard* shard;
  };
  const ThreadTeam::RawFn entry = [](void* ctxp, int lt) {
    TouchCtx& tc = *static_cast<TouchCtx*>(ctxp);
    EngineCore& core = *tc.core;
    const auto T = static_cast<std::size_t>(core.threads());
    const auto ts = static_cast<std::size_t>(tc.shard->threads());
    for (int p = 0; p < core.partition_count(); ++p) {
      const auto [lo, hi] = tc.shard->vt_range(p);
      if (lo >= hi) continue;
      EvalContext::PartDyn& dy = *tc.ctx->dyn_[static_cast<std::size_t>(p)];
      const std::size_t patterns = core.pattern_count(p);
      const std::size_t stride =
          core.parts_[static_cast<std::size_t>(p)]->clv_stride();
      // The shard's owned pattern block, proportional to its vt range and
      // sub-split over its local threads. The vt boundaries tile
      // [0, patterns) exactly, so across all shards and threads every
      // element is touched exactly once.
      const std::size_t b0 = patterns * static_cast<std::size_t>(lo) / T;
      const std::size_t b1 = patterns * static_cast<std::size_t>(hi) / T;
      const std::size_t lt0 = b0 + (b1 - b0) * static_cast<std::size_t>(lt) / ts;
      const std::size_t lt1 =
          b0 + (b1 - b0) * (static_cast<std::size_t>(lt) + 1) / ts;
      if (lt0 >= lt1) continue;
      for (auto& v : dy.clv)
        std::fill(v.begin() + static_cast<std::ptrdiff_t>(lt0 * stride),
                  v.begin() + static_cast<std::ptrdiff_t>(lt1 * stride), 0.0);
      std::fill(
          dy.sumtable.begin() + static_cast<std::ptrdiff_t>(lt0 * stride),
          dy.sumtable.begin() + static_cast<std::ptrdiff_t>(lt1 * stride),
          0.0);
    }
  };

  std::vector<TouchCtx> tctx(shards_.size());
  for (std::size_t s = 0; s < shards_.size(); ++s)
    tctx[s] = {this, &ctx, shards_[s].get()};
  for (std::size_t s = 1; s < shards_.size(); ++s)
    shards_[s]->team().start(entry, &tctx[s]);
  team_->run(entry, &tctx[0]);
  for (std::size_t s = 1; s < shards_.size(); ++s) shards_[s]->team().join();
}

namespace {

/// Expand the factories' "all partitions" marker in place. An explicitly
/// empty partition list stays empty (a degenerate but valid command, same
/// as the pre-split engine's).
void normalize_scope(EvalRequest& req, int partition_count) {
  if (!req.all_partitions) return;
  req.all_partitions = false;
  req.partitions.resize(static_cast<std::size_t>(partition_count));
  for (int p = 0; p < partition_count; ++p)
    req.partitions[static_cast<std::size_t>(p)] = p;
}

}  // namespace

std::size_t EngineCore::submit(EvalContext& ctx, EvalRequest req) {
  if (&ctx.core() != this)
    throw std::invalid_argument("submit: context belongs to another core");
  check_not_pending(ctx);
  normalize_scope(req, partition_count());
  Pending item;
  item.ctx = &ctx;
  item.req = std::move(req);
  try {
    build_request(ctx, item.req, item.cmd);
  } catch (...) {
    // A mid-assembly throw (bad_alloc, validation) may have reserved
    // tip-table entries whose contents would never be built; unwind them so
    // the shared LRUs stay consistent and the queued batch is unaffected.
    rollback_command_tables(item.cmd);
    throw;
  }
  pending_.push_back(std::move(item));
  return pending_.size() - 1;
}

void EngineCore::abort_pending() {
  // Dropping every queued command together makes the per-command rollback
  // safe: an entry reserved by one dropped command can only be referenced
  // by other commands of the same (dropped) queue.
  for (Pending& item : pending_) rollback_command_tables(item.cmd);
  pending_.clear();
}

std::vector<double> EngineCore::wait() {
  std::vector<Pending> batch = std::move(pending_);
  pending_.clear();
  std::vector<double> results(batch.size(), 0.0);
  if (batch.empty()) return results;
  execute_batch(batch);
  if (fault::enabled())
    for (Pending& item : batch) maybe_inject_numeric_fault(item);
  // Finalize EVERY item before raising: the flush's bookkeeping (epochs,
  // orientations, root edges, reduced outputs) completes whether or not a
  // fault is detected, so the core accepts new commands immediately after a
  // catch. Callers discard the poisoned results on throw.
  for (std::size_t i = 0; i < batch.size(); ++i)
    results[i] = finalize(batch[i]);
  if (check_numerics_) {
    std::vector<FaultRecord> records;
    for (const Pending& item : batch) collect_numeric_faults(item, records);
    if (!records.empty()) raise_numeric_faults(batch, std::move(records));
  }
  return results;
}

std::vector<double> EngineCore::evaluate_batch(
    std::span<EvalContext* const> ctxs, std::span<const EdgeId> edges) {
  if (ctxs.size() != edges.size())
    throw std::invalid_argument("evaluate_batch: size mismatch");
  for (std::size_t i = 0; i < ctxs.size(); ++i)
    submit(*ctxs[i], EvalRequest::evaluate(edges[i]));
  return wait();
}

double EngineCore::run_now(EvalContext& ctx, EvalRequest req) {
  // Executing a one-off command would advance flush_id_ and trim the
  // tip-table LRUs, invalidating table pointers cached inside still-queued
  // commands — so direct context calls are refused while ANY batch is
  // open, not just one involving this context.
  if (!pending_.empty())
    throw std::logic_error(
        "EngineCore has pending batched requests; wait() before driving a "
        "context directly");
  normalize_scope(req, partition_count());
  Pending item;
  item.ctx = &ctx;
  item.req = std::move(req);
  try {
    build_request(ctx, item.req, item.cmd);
  } catch (...) {
    rollback_command_tables(item.cmd);
    throw;
  }
  execute_batch({&item, 1});
  if (fault::enabled()) maybe_inject_numeric_fault(item);
  const double result = finalize(item);
  if (check_numerics_) {
    std::vector<FaultRecord> records;
    collect_numeric_faults(item, records);
    if (!records.empty()) raise_numeric_faults({&item, 1}, std::move(records));
  }
  return result;
}

// ---------------------------------------------------------------------------
// EvalContext
// ---------------------------------------------------------------------------

EvalContext::EvalContext(EngineCore& core, Tree tree)
    : EvalContext(core, std::move(tree), [&] {
        std::vector<PartitionModel> models;
        models.reserve(static_cast<std::size_t>(core.partition_count()));
        for (int p = 0; p < core.partition_count(); ++p)
          models.push_back(core.prototype_model(p));
        return models;
      }()) {}

EvalContext::EvalContext(EngineCore& core, Tree tree,
                         std::vector<PartitionModel> models)
    : core_(&core),
      tree_(std::move(tree)),
      lengths_(BranchLengths::from_tree(tree_, core.partition_count(),
                                        core.linked_branch_lengths())) {
  const CompressedAlignment& aln = core.alignment();
  // A tree over a SUBSET of the core's taxa is allowed: the core's tip
  // encodings are per taxon and kernels only ever read through
  // taxon_of_tip_, so any tree whose tip labels all resolve to taxa works.
  // A placement service exploits this — its core alignment carries extra
  // query-slot taxa that the reference tree (and each lane tree, which uses
  // exactly one slot) does not include.
  if (static_cast<std::size_t>(tree_.tip_count()) > aln.taxon_count())
    throw std::invalid_argument("tree has more tips than alignment taxa");
  if (models.size() != static_cast<std::size_t>(core.partition_count()))
    throw std::invalid_argument("need one model per partition");
  for (int p = 0; p < core.partition_count(); ++p) {
    const PartitionModel& proto = core.prototype_model(p);
    const PartitionModel& m = models[static_cast<std::size_t>(p)];
    if (m.model().states() != proto.model().states() ||
        m.gamma_categories() != proto.gamma_categories())
      throw std::invalid_argument(
          "context model shape mismatch in partition " + std::to_string(p));
  }

  // Map tree tips to alignment taxa by name (and back: the core's tip
  // encodings are stored per taxon). Taxa absent from the tree keep
  // tip_of_taxon_ == kNoId; every tree tip must name a taxon.
  tip_of_taxon_.assign(aln.taxon_count(), kNoId);
  taxon_of_tip_.assign(static_cast<std::size_t>(tree_.tip_count()), 0);
  std::unordered_map<std::string, NodeId> tip_by_label;
  for (NodeId t = 0; t < tree_.tip_count(); ++t)
    tip_by_label[tree_.label(t)] = t;
  if (tip_by_label.size() != static_cast<std::size_t>(tree_.tip_count()))
    throw std::invalid_argument("duplicate tree tip labels");
  std::unordered_map<std::string, std::size_t> taxon_by_name;
  for (std::size_t x = 0; x < aln.taxon_count(); ++x)
    taxon_by_name[aln.taxon_names[x]] = x;
  for (NodeId t = 0; t < tree_.tip_count(); ++t) {
    auto it = taxon_by_name.find(tree_.label(t));
    if (it == taxon_by_name.end())
      throw std::invalid_argument("tree tip '" + tree_.label(t) +
                                  "' missing from alignment");
    tip_of_taxon_[it->second] = t;
    taxon_of_tip_[static_cast<std::size_t>(t)] = it->second;
  }

  // Allocate CLVs, scale counts, and tracking structures.
  const int inner_count = tree_.node_count() - tree_.tip_count();
  for (int p = 0; p < core.partition_count(); ++p) {
    auto dy = std::make_unique<PartDyn>(std::move(models[static_cast<std::size_t>(p)]));
    const std::size_t patterns = core.pattern_count(p);
    const std::size_t stride =
        core.parts_[static_cast<std::size_t>(p)]->clv_stride();
    dy->weights = core.parts_[static_cast<std::size_t>(p)]->base_weights;
    dy->clv.resize(static_cast<std::size_t>(inner_count));
    dy->scale.resize(static_cast<std::size_t>(inner_count));
    dy->clv_ptr.resize(static_cast<std::size_t>(inner_count));
    dy->scale_ptr.resize(static_cast<std::size_t>(inner_count));
    dy->slot_of.assign(static_cast<std::size_t>(inner_count), -1);
    for (int i = 0; i < inner_count; ++i) {
      // No-init allocation; first_touch_context zero-fills below, on the
      // owning shard's threads when the engine is sharded.
      dy->clv[static_cast<std::size_t>(i)].resize(patterns * stride);
      dy->scale[static_cast<std::size_t>(i)].assign(patterns, 0);
      dy->clv_ptr[static_cast<std::size_t>(i)] =
          dy->clv[static_cast<std::size_t>(i)].data();
      dy->scale_ptr[static_cast<std::size_t>(i)] =
          dy->scale[static_cast<std::size_t>(i)].data();
    }
    dy->sumtable.resize(patterns * stride);
    dyn_.push_back(std::move(dy));
  }
  core.first_touch_context(*this);
  orient_.assign(static_cast<std::size_t>(tree_.node_count()), kNoId);
  model_epoch_.resize(dyn_.size());
  // Content-addressed: contexts constructed over identical model states
  // (every bootstrap replicate, every fixed-model scan) share one epoch and
  // with it the core's cached tip tables.
  for (std::size_t p = 0; p < dyn_.size(); ++p)
    model_epoch_[p] = core.epoch_for_model(dyn_[p]->model);
  weights_stamp_.assign(dyn_.size(), 0);
  clv_epoch_.assign(static_cast<std::size_t>(inner_count),
                    std::vector<std::uint64_t>(dyn_.size(), 0));
  last_lnl_.assign(dyn_.size(), 0.0);

  red_stride_ = (dyn_.size() + 7) / 8 * 8;
  const std::size_t red_size =
      static_cast<std::size_t>(core.threads()) * red_stride_;
  red_lnl_.assign(red_size, 0.0);
  red_d1_.assign(red_size, 0.0);
  red_d2_.assign(red_size, 0.0);
}

EvalContext::EvalContext(const EvalContext& parent, ClvSlotPool& pool)
    : core_(parent.core_),
      pool_(&pool),
      tree_(parent.tree_),
      lengths_(parent.lengths_) {
  if (parent.is_overlay())
    throw std::invalid_argument(
        "overlay EvalContext: parent must not itself be an overlay");
  const int inner_count = tree_.node_count() - tree_.tip_count();
  for (int p = 0; p < core_->partition_count(); ++p) {
    auto dy =
        std::make_unique<PartDyn>(parent.dyn_[static_cast<std::size_t>(p)]->model);
    const std::size_t patterns = core_->pattern_count(p);
    const std::size_t stride =
        core_->parts_[static_cast<std::size_t>(p)]->clv_stride();
    dy->weights = parent.dyn_[static_cast<std::size_t>(p)]->weights;
    // No owned CLV storage: clv_ptr aliases the parent (or a leased slot).
    dy->clv_ptr.assign(static_cast<std::size_t>(inner_count), nullptr);
    dy->scale_ptr.assign(static_cast<std::size_t>(inner_count), nullptr);
    dy->slot_of.assign(static_cast<std::size_t>(inner_count), -1);
    dy->sumtable.resize(patterns * stride);  // zero-filled just below
    dyn_.push_back(std::move(dy));
  }
  core_->first_touch_context(*this);
  orient_.assign(static_cast<std::size_t>(tree_.node_count()), kNoId);
  model_epoch_ = parent.model_epoch_;
  weights_stamp_.assign(dyn_.size(), 0);
  parent_weights_stamp_ = parent.weights_stamp_;
  clv_epoch_.assign(static_cast<std::size_t>(inner_count),
                    std::vector<std::uint64_t>(dyn_.size(), 0));
  last_lnl_.assign(dyn_.size(), 0.0);

  red_stride_ = (dyn_.size() + 7) / 8 * 8;
  const std::size_t red_size =
      static_cast<std::size_t>(core_->threads()) * red_stride_;
  red_lnl_.assign(red_size, 0.0);
  red_d1_.assign(red_size, 0.0);
  red_d2_.assign(red_size, 0.0);

  rebind(parent);
}

void EvalContext::rebind(const EvalContext& parent) {
  if (!is_overlay())
    throw std::logic_error("rebind: not an overlay context");
  if (parent.core_ != core_)
    throw std::invalid_argument("rebind: parent belongs to another core");
  if (parent.is_overlay())
    throw std::invalid_argument("rebind: parent must not itself be an overlay");
  core_->check_not_pending(*this);
  core_->check_not_pending(parent);

  const bool new_parent = bound_parent_ != &parent;
  for (std::size_t p = 0; p < dyn_.size(); ++p) {
    PartDyn& dy = *dyn_[p];
    const PartDyn& pdy = *parent.dyn_[p];
    // Per-context eviction: return every leased slot and share the parent's
    // buffers again.
    for (std::size_t i = 0; i < dy.slot_of.size(); ++i) {
      if (dy.slot_of[i] >= 0) pool_->release(static_cast<int>(p), dy.slot_of[i]);
      dy.slot_of[i] = -1;
      dy.clv_ptr[i] = pdy.clv_ptr[i];
      dy.scale_ptr[i] = pdy.scale_ptr[i];
    }
    // Models and weights change rarely between rebinds (only across model-
    // optimization phases); re-copy only when the parent's actually moved.
    if (new_parent || model_epoch_[p] != parent.model_epoch_[p])
      dy.model = pdy.model;
    if (new_parent || parent_weights_stamp_[p] != parent.weights_stamp_[p])
      dy.weights = pdy.weights;
  }
  tree_ = parent.tree_;
  lengths_ = parent.lengths_;
  tip_of_taxon_ = parent.tip_of_taxon_;
  taxon_of_tip_ = parent.taxon_of_tip_;
  orient_ = parent.orient_;
  clv_epoch_ = parent.clv_epoch_;
  model_epoch_ = parent.model_epoch_;
  parent_weights_stamp_ = parent.weights_stamp_;
  root_edge_ = parent.root_edge_;
  sumtable_valid_ = false;
  bound_parent_ = &parent;
}

void EvalContext::ensure_owned_clv(int p, std::size_t inner) {
  if (pool_ == nullptr) return;
  PartDyn& dy = *dyn_[static_cast<std::size_t>(p)];
  if (dy.slot_of[inner] >= 0) return;
  const ClvSlotPool::Lease lease = pool_->acquire(p);
  dy.slot_of[inner] = lease.slot;
  dy.clv_ptr[inner] = lease.clv;
  dy.scale_ptr[inner] = lease.scale;
}

EvalContext::~EvalContext() {
  // A pending request must not outlive its context (possible when an
  // exception unwinds a scope that submitted but never reached wait()):
  // dead items keep their ticket slot so wait()'s result indexing holds,
  // but are skipped by execution and finalization. Any tip tables the dead
  // command RESERVED in the shared LRU are built here, on the master, while
  // this context's models are still alive — other queued commands may
  // already reference the entries, and the stamped (epoch, blen) keys must
  // never survive with unbuilt contents.
  {
    Matrix pm;
    for (auto& item : core_->pending_)
      if (item.ctx == this) {
        for (const auto& task : item.cmd.pmat_tasks)
          if (task.tip_dst != nullptr) core_->run_pmat_task(item, task, pm);
        item.ctx = nullptr;
      }
  }
  if (pool_ != nullptr)
    for (std::size_t p = 0; p < dyn_.size(); ++p) {
      PartDyn& dy = *dyn_[p];
      for (std::size_t i = 0; i < dy.slot_of.size(); ++i)
        if (dy.slot_of[i] >= 0)
          pool_->release(static_cast<int>(p), dy.slot_of[i]);
    }
  if (core_->service_ctx_ == this) core_->pin_service_context(nullptr);
  core_->release_context_tables();
}

const PartitionModel& EvalContext::model(int p) const {
  return dyn_[static_cast<std::size_t>(p)]->model;
}

PartitionModel& EvalContext::model(int p) {
  return dyn_[static_cast<std::size_t>(p)]->model;
}

std::span<const double> EvalContext::pattern_weights(int p) const {
  return dyn_[static_cast<std::size_t>(p)]->weights;
}

void EvalContext::set_pattern_weights(int p, std::span<const double> weights) {
  PartDyn& dy = *dyn_[static_cast<std::size_t>(p)];
  if (weights.size() != dy.weights.size())
    throw std::invalid_argument("set_pattern_weights: size mismatch");
  core_->check_not_pending(*this);
  dy.weights.assign(weights.begin(), weights.end());
  ++weights_stamp_[static_cast<std::size_t>(p)];
}

void EvalContext::invalidate_partition(int p) {
  model_epoch_[static_cast<std::size_t>(p)] = core_->next_epoch();
  sumtable_valid_ = false;
}

void EvalContext::invalidate_node(NodeId v) {
  if (!tree_.is_tip(v)) orient_[static_cast<std::size_t>(v)] = kNoId;
  sumtable_valid_ = false;
}

void EvalContext::invalidate_all() {
  std::fill(orient_.begin(), orient_.end(), kNoId);
  sumtable_valid_ = false;
}

double EvalContext::loglikelihood(EdgeId edge) {
  return core_->run_now(*this, EvalRequest::evaluate(edge));
}

double EvalContext::loglikelihood(EdgeId edge,
                                  const std::vector<int>& partitions) {
  return core_->run_now(*this, EvalRequest::evaluate(edge, partitions));
}

std::vector<double> EvalContext::site_loglikelihoods(EdgeId edge, int p) {
  std::vector<double> out(core_->pattern_count(p));
  site_loglikelihoods(edge, p, out);
  return out;
}

void EvalContext::site_loglikelihoods(EdgeId edge, int p,
                                      std::span<double> out) {
  core_->run_now(*this, EvalRequest::site_lnl(edge, p, out));
}

void EvalContext::prepare_root(EdgeId edge) {
  core_->run_now(*this, EvalRequest::prepare_root(edge));
}

void EvalContext::compute_sumtable(const std::vector<int>& partitions) {
  core_->run_now(*this, EvalRequest::sumtable(partitions));
}

void EvalContext::nr_derivatives(const std::vector<int>& partitions,
                                 std::span<const double> lens,
                                 std::span<double> d1, std::span<double> d2) {
  core_->run_now(*this,
                 EvalRequest::nr_derivatives(partitions, lens, d1, d2));
}

void EvalContext::nr_derivatives_at(EdgeId edge,
                                    const std::vector<int>& partitions,
                                    std::span<const double> lens,
                                    std::span<double> d1,
                                    std::span<double> d2) {
  core_->run_now(*this,
                 EvalRequest::sumtable_nr(edge, partitions, lens, d1, d2));
}

void EvalContext::sync_tree_lengths() {
  for (EdgeId e = 0; e < tree_.edge_count(); ++e)
    tree_.set_length(e, lengths_.mean(e));
}

void EvalContext::copy_state_from(const EvalContext& other) {
  if (other.core_ != core_)
    throw std::invalid_argument("copy_state_from: contexts share no core");
  if (&other == this) return;
  core_->check_not_pending(*this);
  core_->check_not_pending(other);
  tree_ = other.tree_;
  lengths_ = other.lengths_;
  // The tip-id -> taxon mapping belongs to the tree: contexts over the
  // same core share the taxon set, but not necessarily the tip ordering.
  tip_of_taxon_ = other.tip_of_taxon_;
  taxon_of_tip_ = other.taxon_of_tip_;
  for (std::size_t p = 0; p < dyn_.size(); ++p) {
    dyn_[p]->model = other.dyn_[p]->model;
    dyn_[p]->weights = other.dyn_[p]->weights;
    invalidate_partition(static_cast<int>(p));
  }
  invalidate_all();
  root_edge_ = kNoId;
}

}  // namespace plk
