// Parallelization strategy selector: the paper's oldPAR vs newPAR.
#pragma once

#include <string_view>

namespace plk {

/// How iterative per-partition optimizations are scheduled over the thread
/// team (the subject of the paper).
enum class Strategy {
  /// Original approach: optimize one partition at a time. Every Brent /
  /// Newton-Raphson iteration synchronizes all threads while offering each
  /// thread only that partition's patterns / nthreads of work.
  kOldPar,
  /// The paper's contribution: advance the iterative optimizers of all
  /// partitions simultaneously, with a per-partition convergence vector, so
  /// every synchronization covers the full alignment width.
  kNewPar,
};

inline std::string_view to_string(Strategy s) {
  return s == Strategy::kOldPar ? "oldPAR" : "newPAR";
}

}  // namespace plk
