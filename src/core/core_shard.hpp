// One NUMA-aware sub-core of a sharded EngineCore.
//
// A CoreShard owns a disjoint set of (partition, virtual-tid-range) slices
// of the global work schedule plus the thread team that executes them. The
// engine's master fans every flush out to the involved shards concurrently
// (shard 0's team is master-inline, the rest are detached start()/join()
// teams) and each shard barriers independently; the master then joins the
// shards in fixed index order, which together with the unchanged fold over
// per-(vt, partition) reduction rows forms the two-level deterministic
// reduction tree. A shard's local thread `lt` replays exactly the virtual
// tids vt with vt % threads() == lt of its owned slices, so every row holds
// the bit-identical value a flat single-team run would produce.
#pragma once

#include <memory>
#include <span>
#include <utility>
#include <vector>

#include "parallel/schedule.hpp"
#include "parallel/thread_team.hpp"
#include "parallel/topology.hpp"

namespace plk {

class CoreShard {
 public:
  /// `spec` is this shard's entry of the engine's ShardPlan; `partitions`
  /// the global partition count; `master_inline` selects the classic
  /// run()-driven team (shard 0) vs a detached start()/join() team;
  /// `bind_cpus` the CPU set workers pin to (empty = unbound);
  /// `concurrency_hint` the engine's total thread count across all shards.
  CoreShard(int index, const ShardSpec& spec, int partitions,
            bool master_inline, bool instrument, bool cpu_time,
            std::vector<int> bind_cpus, int concurrency_hint);

  int index() const { return index_; }
  int threads() const { return spec_.threads; }
  int node() const { return spec_.node; }
  ThreadTeam& team() { return *team_; }
  const ThreadTeam& team() const { return *team_; }

  std::span<const ShardSlice> slices() const { return spec_.slices; }

  /// Does this shard execute virtual tid `vt` of partition `part`?
  bool owns(int part, int vt) const {
    const auto& r = range_[static_cast<std::size_t>(part)];
    return vt >= r.first && vt < r.second;
  }
  /// Does this shard own any vt of `part`?
  bool owns_part(int part) const {
    const auto& r = range_[static_cast<std::size_t>(part)];
    return r.first < r.second;
  }
  /// Owned [vt_begin, vt_end) of `part` ((0, 0) when unowned).
  std::pair<int, int> vt_range(int part) const {
    return range_[static_cast<std::size_t>(part)];
  }

  /// Refresh the cached slice view of the (rebuilt) global schedule: the
  /// modeled cost of this shard's owned vts per partition. Priced once per
  /// schedule build, read per flush by the coarse item packer.
  void cache_slice_costs(const WorkSchedule& sched,
                         const std::vector<PartitionShape>& shapes);

  /// Cached modeled cost of this shard's slice of `part` (0 when unowned).
  double slice_cost(int part) const {
    return part < static_cast<int>(slice_cost_.size())
               ? slice_cost_[static_cast<std::size_t>(part)]
               : 0.0;
  }

 private:
  int index_;
  ShardSpec spec_;
  std::vector<std::pair<int, int>> range_;  ///< per partition, (0,0) unowned
  std::vector<double> slice_cost_;          ///< cached slice view (see above)
  std::unique_ptr<ThreadTeam> team_;
};

}  // namespace plk
