#include "core/branch_opt.hpp"

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "model/subst_model.hpp"
#include "tree/traversal.hpp"

namespace plk {

// ---------------------------------------------------------------------------
// EdgeNrStepper
// ---------------------------------------------------------------------------

void EdgeNrStepper::start(const BranchLengths& bl, EdgeId edge,
                          std::span<const int> scope, bool linked,
                          const BranchOptOptions& opts) {
  edge_ = edge;
  linked_ = linked;
  scope_.assign(scope.begin(), scope.end());
  nr_.clear();
  lens_.resize(scope_.size());
  d1_.resize(scope_.size());
  d2_.resize(scope_.size());
  if (linked_) {
    nr_.emplace_back(bl.get(edge_, scope_.empty() ? 0 : scope_[0]), kBranchMin,
                     kBranchMax, opts.length_tolerance,
                     opts.max_nr_iterations);
    active_ = scope_;  // joint: every scope partition evaluates every round
    alive_.clear();
  } else {
    nr_.reserve(scope_.size());
    alive_.resize(scope_.size());
    for (std::size_t k = 0; k < scope_.size(); ++k) {
      nr_.emplace_back(bl.get(edge_, scope_[k]), kBranchMin, kBranchMax,
                       opts.length_tolerance, opts.max_nr_iterations);
      alive_[k] = k;
    }
    active_ = scope_;
  }
}

bool EdgeNrStepper::done() const {
  if (linked_) return nr_.empty() || nr_[0].done();
  return alive_.empty();
}

std::span<const double> EdgeNrStepper::lens() {
  if (linked_) {
    std::fill(lens_.begin(), lens_.end(), nr_[0].current());
    return std::span<const double>(lens_).first(scope_.size());
  }
  for (std::size_t k = 0; k < alive_.size(); ++k)
    lens_[k] = nr_[alive_[k]].current();
  return std::span<const double>(lens_).first(alive_.size());
}

std::span<double> EdgeNrStepper::d1() {
  return std::span<double>(d1_).first(linked_ ? scope_.size() : alive_.size());
}

std::span<double> EdgeNrStepper::d2() {
  return std::span<double>(d2_).first(linked_ ? scope_.size() : alive_.size());
}

void EdgeNrStepper::feed(BranchLengths& bl) {
  if (linked_) {
    double s1 = 0.0, s2 = 0.0;
    for (std::size_t k = 0; k < scope_.size(); ++k) {
      s1 += d1_[k];
      s2 += d2_[k];
    }
    nr_[0].feed(s1, s2);
    if (nr_[0].done()) bl.set_all(edge_, nr_[0].current());
    return;
  }
  std::vector<std::size_t> still;
  still.reserve(alive_.size());
  for (std::size_t k = 0; k < alive_.size(); ++k) {
    NewtonBranch& inst = nr_[alive_[k]];
    inst.feed(d1_[k], d2_[k]);
    if (!inst.done())
      still.push_back(alive_[k]);
    else
      bl.set(edge_, scope_[alive_[k]], inst.current());
  }
  alive_ = std::move(still);
  active_.resize(alive_.size());
  for (std::size_t k = 0; k < alive_.size(); ++k)
    active_[k] = scope_[alive_[k]];
}

// ---------------------------------------------------------------------------
// Sequential single-engine optimizers
// ---------------------------------------------------------------------------

namespace {

std::vector<int> all_partitions(int count) {
  std::vector<int> all(static_cast<std::size_t>(count));
  for (int p = 0; p < count; ++p) all[static_cast<std::size_t>(p)] = p;
  return all;
}

/// Drive one freshly start()ed stepper to convergence against a single
/// engine. The FIRST derivative round fuses the root relocation and the
/// sumtable build into its own command (EvalRequest::sumtable_nr) — one
/// parallel region for what the classic protocol issued as three — and
/// every later round is one nr_derivatives command, exactly as before.
void run_nr(Engine& engine, EdgeId edge, EdgeNrStepper& nr) {
  bool first = true;
  while (!nr.done()) {
    if (first)
      engine.nr_derivatives_at(edge, nr.active(), nr.lens(), nr.d1(),
                               nr.d2());
    else
      engine.nr_derivatives(nr.active(), nr.lens(), nr.d1(), nr.d2());
    first = false;
    nr.feed(engine.branch_lengths());
  }
  // A stepper that starts converged (max_nr_iterations == 0) still owes the
  // caller the classic side effect: the virtual root parked on `edge`.
  if (first) engine.prepare_root(edge);
}

}  // namespace

void optimize_edge(Engine& engine, EdgeId edge, Strategy strategy,
                   const BranchOptOptions& opts) {
  const bool linked = engine.branch_lengths().linked();
  EdgeNrStepper nr;
  if (linked || strategy != Strategy::kOldPar) {
    // Joint (linked) estimate, or newPAR unlinked: one fused opener for all
    // partitions, then NR rounds that advance every non-converged partition
    // at once (the paper's boolean convergence vector).
    const auto parts = all_partitions(engine.partition_count());
    nr.start(engine.branch_lengths(), edge, parts, linked, opts);
    run_nr(engine, edge, nr);
  } else {
    // oldPAR, unlinked: one partition at a time — per-partition fused
    // opener and per-partition NR iteration commands.
    for (int p = 0; p < engine.partition_count(); ++p) {
      const std::vector<int> one{p};
      nr.start(engine.branch_lengths(), edge, one, false, opts);
      run_nr(engine, edge, nr);
    }
  }
}

double optimize_branch_lengths(Engine& engine, Strategy strategy,
                               const BranchOptOptions& opts) {
  const auto order = dfs_edge_order(engine.tree());
  for (int pass = 0; pass < opts.smoothing_passes; ++pass)
    for (EdgeId e : order) optimize_edge(engine, e, strategy, opts);
  return engine.loglikelihood(order.empty() ? 0 : order.back());
}

// ---------------------------------------------------------------------------
// Lockstep batch optimizers
// ---------------------------------------------------------------------------

namespace {

/// Lockstep rounds for steppers that were just start()ed: one parallel
/// region per round, shared by every context still iterating. Each
/// context's FIRST round is the fused opener (root relocation + sumtable +
/// derivatives in its one command — see EvalRequest::sumtable_nr); later
/// rounds are plain derivative commands. Contexts whose stepper starts
/// converged still get their root parked on their edge, preserving the
/// classic optimize_edge side effect.
void run_nr_batch(EngineCore& core, std::span<EvalContext* const> ctxs,
                  std::span<const EdgeId> edges, std::span<EdgeNrStepper> nr) {
  std::vector<std::size_t> round;
  bool first = true;
  for (;;) {
    round.clear();
    for (std::size_t c = 0; c < ctxs.size(); ++c) {
      if (nr[c].done()) {
        if (first) core.submit(*ctxs[c], EvalRequest::prepare_root(edges[c]));
        continue;
      }
      round.push_back(c);
      core.submit(*ctxs[c],
                  first ? EvalRequest::sumtable_nr(edges[c], nr[c].active(),
                                                   nr[c].lens(), nr[c].d1(),
                                                   nr[c].d2())
                        : EvalRequest::nr_derivatives(nr[c].active(),
                                                      nr[c].lens(), nr[c].d1(),
                                                      nr[c].d2()));
    }
    if (round.empty()) {
      if (first) core.wait();  // flush the parked prepare_roots
      return;
    }
    core.wait();
    first = false;
    for (std::size_t c : round) nr[c].feed(ctxs[c]->branch_lengths());
  }
}

}  // namespace

void optimize_edge_batch(EngineCore& core, std::span<EvalContext* const> ctxs,
                         std::span<const EdgeId> edges, Strategy strategy,
                         const BranchOptOptions& opts) {
  const std::size_t C = ctxs.size();
  if (C != edges.size())
    throw std::invalid_argument("optimize_edge_batch: size mismatch");
  if (C == 0) return;
  const bool linked = core.linked_branch_lengths();
  std::vector<EdgeNrStepper> nr(C);

  if (linked || strategy != Strategy::kOldPar) {
    // Every context's fused opener — one parallel region — then lockstep NR.
    const auto all = all_partitions(core.partition_count());
    for (std::size_t c = 0; c < C; ++c)
      nr[c].start(ctxs[c]->branch_lengths(), edges[c], all, linked, opts);
    run_nr_batch(core, ctxs, edges, nr);
  } else {
    // oldPAR: partitions one at a time, each still lockstep across contexts.
    for (int p = 0; p < core.partition_count(); ++p) {
      const std::vector<int> one{p};
      for (std::size_t c = 0; c < C; ++c)
        nr[c].start(ctxs[c]->branch_lengths(), edges[c], one, false, opts);
      run_nr_batch(core, ctxs, edges, nr);
    }
  }
}

std::vector<double> optimize_branch_lengths_batch(
    EngineCore& core, std::span<EvalContext* const> ctxs,
    const BranchOptOptions& opts) {
  const std::size_t C = ctxs.size();
  if (C == 0) return {};

  // Each context walks its own tree's DFS edge order; trees over the same
  // taxa all have the same edge count, so step i is well-defined batch-wide.
  std::vector<std::vector<EdgeId>> order(C);
  for (std::size_t c = 0; c < C; ++c) order[c] = dfs_edge_order(ctxs[c]->tree());
  const std::size_t E = order[0].size();
  for (const auto& o : order)
    if (o.size() != E)
      throw std::invalid_argument(
          "optimize_branch_lengths_batch: edge count mismatch");

  std::vector<EdgeId> step_edges(C);
  for (int pass = 0; pass < opts.smoothing_passes; ++pass) {
    for (std::size_t ei = 0; ei < E; ++ei) {
      for (std::size_t c = 0; c < C; ++c) step_edges[c] = order[c][ei];
      optimize_edge_batch(core, ctxs, step_edges, Strategy::kNewPar, opts);
    }
  }

  // Final likelihoods, one batched evaluation.
  std::vector<EdgeId> final_edges(C);
  for (std::size_t c = 0; c < C; ++c)
    final_edges[c] = order[c].empty() ? 0 : order[c].back();
  return core.evaluate_batch(ctxs, final_edges);
}

}  // namespace plk
