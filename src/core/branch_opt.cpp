#include "core/branch_opt.hpp"

#include <algorithm>
#include <vector>

#include "model/subst_model.hpp"
#include "optimize/newton.hpp"
#include "tree/traversal.hpp"

namespace plk {

namespace {

std::vector<int> all_partitions(const Engine& engine) {
  std::vector<int> all(static_cast<std::size_t>(engine.partition_count()));
  for (int p = 0; p < engine.partition_count(); ++p)
    all[static_cast<std::size_t>(p)] = p;
  return all;
}

/// Joint (linked) estimate: one NR instance whose derivatives are summed
/// over all partitions. Identical schedule for both strategies.
void optimize_edge_linked(Engine& engine, EdgeId edge,
                          const BranchOptOptions& opts) {
  const auto parts = all_partitions(engine);
  engine.compute_sumtable(parts);
  BranchLengths& bl = engine.branch_lengths();

  NewtonBranch nr(bl.get(edge, 0), kBranchMin, kBranchMax,
                  opts.length_tolerance, opts.max_nr_iterations);
  std::vector<double> lens(parts.size());
  std::vector<double> d1(parts.size()), d2(parts.size());
  while (!nr.done()) {
    std::fill(lens.begin(), lens.end(), nr.current());
    engine.nr_derivatives(parts, lens, d1, d2);
    double s1 = 0.0, s2 = 0.0;
    for (std::size_t k = 0; k < parts.size(); ++k) {
      s1 += d1[k];
      s2 += d2[k];
    }
    nr.feed(s1, s2);
  }
  bl.set_all(edge, nr.current());
}

/// oldPAR, unlinked: one partition at a time — per-partition sumtable and
/// per-partition NR iteration commands.
void optimize_edge_old(Engine& engine, EdgeId edge,
                       const BranchOptOptions& opts) {
  BranchLengths& bl = engine.branch_lengths();
  for (int p = 0; p < engine.partition_count(); ++p) {
    const std::vector<int> one{p};
    engine.compute_sumtable(one);
    NewtonBranch nr(bl.get(edge, p), kBranchMin, kBranchMax,
                    opts.length_tolerance, opts.max_nr_iterations);
    double len, d1, d2;
    while (!nr.done()) {
      len = nr.current();
      engine.nr_derivatives(one, {&len, 1}, {&d1, 1}, {&d2, 1});
      nr.feed(d1, d2);
    }
    bl.set(edge, p, nr.current());
  }
}

/// newPAR, unlinked: all partitions advance simultaneously; converged
/// partitions drop out of the command via the active list (the paper's
/// boolean convergence vector).
void optimize_edge_new(Engine& engine, EdgeId edge,
                       const BranchOptOptions& opts) {
  BranchLengths& bl = engine.branch_lengths();
  const int P = engine.partition_count();

  engine.compute_sumtable(all_partitions(engine));

  std::vector<NewtonBranch> nr;
  nr.reserve(static_cast<std::size_t>(P));
  for (int p = 0; p < P; ++p)
    nr.emplace_back(bl.get(edge, p), kBranchMin, kBranchMax,
                    opts.length_tolerance, opts.max_nr_iterations);

  std::vector<int> active = all_partitions(engine);
  std::vector<double> lens, d1, d2;
  while (!active.empty()) {
    lens.resize(active.size());
    d1.resize(active.size());
    d2.resize(active.size());
    for (std::size_t k = 0; k < active.size(); ++k)
      lens[k] = nr[static_cast<std::size_t>(active[k])].current();
    engine.nr_derivatives(active, lens, d1, d2);

    std::vector<int> still_active;
    for (std::size_t k = 0; k < active.size(); ++k) {
      auto& inst = nr[static_cast<std::size_t>(active[k])];
      inst.feed(d1[k], d2[k]);
      if (!inst.done())
        still_active.push_back(active[k]);
      else
        bl.set(edge, active[k], inst.current());
    }
    active = std::move(still_active);
  }
}

}  // namespace

void optimize_edge(Engine& engine, EdgeId edge, Strategy strategy,
                   const BranchOptOptions& opts) {
  engine.prepare_root(edge);
  if (engine.branch_lengths().linked()) {
    optimize_edge_linked(engine, edge, opts);
  } else if (strategy == Strategy::kOldPar) {
    optimize_edge_old(engine, edge, opts);
  } else {
    optimize_edge_new(engine, edge, opts);
  }
}

double optimize_branch_lengths(Engine& engine, Strategy strategy,
                               const BranchOptOptions& opts) {
  const auto order = dfs_edge_order(engine.tree());
  for (int pass = 0; pass < opts.smoothing_passes; ++pass)
    for (EdgeId e : order) optimize_edge(engine, e, strategy, opts);
  return engine.loglikelihood(order.empty() ? 0 : order.back());
}

}  // namespace plk
