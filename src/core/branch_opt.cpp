#include "core/branch_opt.hpp"

#include <algorithm>
#include <vector>

#include "model/subst_model.hpp"
#include "optimize/newton.hpp"
#include "tree/traversal.hpp"

namespace plk {

namespace {

std::vector<int> all_partitions(const Engine& engine) {
  std::vector<int> all(static_cast<std::size_t>(engine.partition_count()));
  for (int p = 0; p < engine.partition_count(); ++p)
    all[static_cast<std::size_t>(p)] = p;
  return all;
}

/// Joint (linked) estimate: one NR instance whose derivatives are summed
/// over all partitions. Identical schedule for both strategies.
void optimize_edge_linked(Engine& engine, EdgeId edge,
                          const BranchOptOptions& opts) {
  const auto parts = all_partitions(engine);
  engine.compute_sumtable(parts);
  BranchLengths& bl = engine.branch_lengths();

  NewtonBranch nr(bl.get(edge, 0), kBranchMin, kBranchMax,
                  opts.length_tolerance, opts.max_nr_iterations);
  std::vector<double> lens(parts.size());
  std::vector<double> d1(parts.size()), d2(parts.size());
  while (!nr.done()) {
    std::fill(lens.begin(), lens.end(), nr.current());
    engine.nr_derivatives(parts, lens, d1, d2);
    double s1 = 0.0, s2 = 0.0;
    for (std::size_t k = 0; k < parts.size(); ++k) {
      s1 += d1[k];
      s2 += d2[k];
    }
    nr.feed(s1, s2);
  }
  bl.set_all(edge, nr.current());
}

/// oldPAR, unlinked: one partition at a time — per-partition sumtable and
/// per-partition NR iteration commands.
void optimize_edge_old(Engine& engine, EdgeId edge,
                       const BranchOptOptions& opts) {
  BranchLengths& bl = engine.branch_lengths();
  for (int p = 0; p < engine.partition_count(); ++p) {
    const std::vector<int> one{p};
    engine.compute_sumtable(one);
    NewtonBranch nr(bl.get(edge, p), kBranchMin, kBranchMax,
                    opts.length_tolerance, opts.max_nr_iterations);
    double len, d1, d2;
    while (!nr.done()) {
      len = nr.current();
      engine.nr_derivatives(one, {&len, 1}, {&d1, 1}, {&d2, 1});
      nr.feed(d1, d2);
    }
    bl.set(edge, p, nr.current());
  }
}

/// newPAR, unlinked: all partitions advance simultaneously; converged
/// partitions drop out of the command via the active list (the paper's
/// boolean convergence vector).
void optimize_edge_new(Engine& engine, EdgeId edge,
                       const BranchOptOptions& opts) {
  BranchLengths& bl = engine.branch_lengths();
  const int P = engine.partition_count();

  engine.compute_sumtable(all_partitions(engine));

  std::vector<NewtonBranch> nr;
  nr.reserve(static_cast<std::size_t>(P));
  for (int p = 0; p < P; ++p)
    nr.emplace_back(bl.get(edge, p), kBranchMin, kBranchMax,
                    opts.length_tolerance, opts.max_nr_iterations);

  std::vector<int> active = all_partitions(engine);
  std::vector<double> lens, d1, d2;
  while (!active.empty()) {
    lens.resize(active.size());
    d1.resize(active.size());
    d2.resize(active.size());
    for (std::size_t k = 0; k < active.size(); ++k)
      lens[k] = nr[static_cast<std::size_t>(active[k])].current();
    engine.nr_derivatives(active, lens, d1, d2);

    std::vector<int> still_active;
    for (std::size_t k = 0; k < active.size(); ++k) {
      auto& inst = nr[static_cast<std::size_t>(active[k])];
      inst.feed(d1[k], d2[k]);
      if (!inst.done())
        still_active.push_back(active[k]);
      else
        bl.set(edge, active[k], inst.current());
    }
    active = std::move(still_active);
  }
}

}  // namespace

void optimize_edge(Engine& engine, EdgeId edge, Strategy strategy,
                   const BranchOptOptions& opts) {
  engine.prepare_root(edge);
  if (engine.branch_lengths().linked()) {
    optimize_edge_linked(engine, edge, opts);
  } else if (strategy == Strategy::kOldPar) {
    optimize_edge_old(engine, edge, opts);
  } else {
    optimize_edge_new(engine, edge, opts);
  }
}

double optimize_branch_lengths(Engine& engine, Strategy strategy,
                               const BranchOptOptions& opts) {
  const auto order = dfs_edge_order(engine.tree());
  for (int pass = 0; pass < opts.smoothing_passes; ++pass)
    for (EdgeId e : order) optimize_edge(engine, e, strategy, opts);
  return engine.loglikelihood(order.empty() ? 0 : order.back());
}

std::vector<double> optimize_branch_lengths_batch(
    EngineCore& core, std::span<EvalContext* const> ctxs,
    const BranchOptOptions& opts) {
  const std::size_t C = ctxs.size();
  if (C == 0) return {};
  const int P = core.partition_count();
  std::vector<int> all(static_cast<std::size_t>(P));
  for (int p = 0; p < P; ++p) all[static_cast<std::size_t>(p)] = p;
  const bool linked = core.linked_branch_lengths();

  // Each context walks its own tree's DFS edge order; trees over the same
  // taxa all have the same edge count, so step i is well-defined batch-wide.
  std::vector<std::vector<EdgeId>> order(C);
  for (std::size_t c = 0; c < C; ++c) order[c] = dfs_edge_order(ctxs[c]->tree());
  const std::size_t E = order[0].size();
  for (const auto& o : order)
    if (o.size() != E)
      throw std::invalid_argument(
          "optimize_branch_lengths_batch: edge count mismatch");

  // Per-context NR instances and request buffers. The request spans point
  // into these vectors, so they are sized once and never reallocated
  // between submit() and wait().
  std::vector<std::vector<NewtonBranch>> nr(C);
  std::vector<std::vector<int>> active(C);
  std::vector<std::vector<double>> lens(C), d1(C), d2(C);
  for (std::size_t c = 0; c < C; ++c) {
    lens[c].resize(static_cast<std::size_t>(P));
    d1[c].resize(static_cast<std::size_t>(P));
    d2[c].resize(static_cast<std::size_t>(P));
  }

  for (int pass = 0; pass < opts.smoothing_passes; ++pass) {
    for (std::size_t ei = 0; ei < E; ++ei) {
      // (i) relocate every context's virtual root — one parallel region.
      for (std::size_t c = 0; c < C; ++c)
        core.submit(*ctxs[c], EvalRequest::prepare_root(order[c][ei]));
      core.wait();

      // (ii) build every context's NR sumtable — one parallel region.
      for (std::size_t c = 0; c < C; ++c)
        core.submit(*ctxs[c], EvalRequest::sumtable(all));
      core.wait();

      // (iii) Newton-Raphson in lockstep: one parallel region per
      // iteration round, shared by every non-converged context. Per
      // context this reproduces optimize_edge's linked/newPAR schedule.
      for (std::size_t c = 0; c < C; ++c) {
        const EdgeId e = order[c][ei];
        BranchLengths& bl = ctxs[c]->branch_lengths();
        nr[c].clear();
        if (linked) {
          nr[c].emplace_back(bl.get(e, 0), kBranchMin, kBranchMax,
                             opts.length_tolerance, opts.max_nr_iterations);
          active[c] = all;  // joint: all partitions evaluate every round
        } else {
          active[c] = all;
          for (int p = 0; p < P; ++p)
            nr[c].emplace_back(bl.get(e, p), kBranchMin, kBranchMax,
                               opts.length_tolerance, opts.max_nr_iterations);
        }
      }

      bool any = true;
      while (any) {
        any = false;
        std::vector<std::size_t> round;  // contexts in this round
        for (std::size_t c = 0; c < C; ++c) {
          if (linked ? nr[c][0].done() : active[c].empty()) continue;
          round.push_back(c);
          const std::size_t n = active[c].size();
          for (std::size_t k = 0; k < n; ++k)
            lens[c][k] = linked
                             ? nr[c][0].current()
                             : nr[c][static_cast<std::size_t>(active[c][k])]
                                   .current();
          core.submit(*ctxs[c],
                      EvalRequest::nr_derivatives(
                          active[c], std::span<const double>(lens[c]).first(n),
                          std::span<double>(d1[c]).first(n),
                          std::span<double>(d2[c]).first(n)));
        }
        if (round.empty()) break;
        core.wait();

        for (std::size_t c : round) {
          const EdgeId e = order[c][ei];
          BranchLengths& bl = ctxs[c]->branch_lengths();
          if (linked) {
            double s1 = 0.0, s2 = 0.0;
            for (std::size_t k = 0; k < active[c].size(); ++k) {
              s1 += d1[c][k];
              s2 += d2[c][k];
            }
            nr[c][0].feed(s1, s2);
            if (nr[c][0].done())
              bl.set_all(e, nr[c][0].current());
            else
              any = true;
          } else {
            std::vector<int> still;
            for (std::size_t k = 0; k < active[c].size(); ++k) {
              auto& inst = nr[c][static_cast<std::size_t>(active[c][k])];
              inst.feed(d1[c][k], d2[c][k]);
              if (!inst.done())
                still.push_back(active[c][k]);
              else
                bl.set(e, active[c][k], inst.current());
            }
            active[c] = std::move(still);
            if (!active[c].empty()) any = true;
          }
        }
      }
    }
  }

  // Final likelihoods, one batched evaluation.
  std::vector<EdgeId> final_edges(C);
  for (std::size_t c = 0; c < C; ++c)
    final_edges[c] = order[c].empty() ? 0 : order[c].back();
  return core.evaluate_batch(ctxs, final_edges);
}

}  // namespace plk
