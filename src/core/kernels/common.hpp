// Shared building blocks for the specialized SIMD kernels.
#pragma once

#include "core/kernels/generic.hpp"
#include "util/simd.hpp"

namespace plk::kernel {

/// Lane-blocks per state vector. Both supported state counts (4, 20) are
/// multiples of every SIMD backend's lane count (4/2/1), so kernels iterate
/// whole blocks with no remainder handling.
template <int S>
inline constexpr int kBlocks = S / simd::kLanes;

/// acc[b] = P^T x, i.e. acc covers s[a] = sum_j P[a][j] * x[j] for all a,
/// with `pt` the transposed matrix [j][a] for one category. Accumulates j in
/// ascending order, matching the generic scalar loop's summation order
/// (up to FMA rounding).
template <int S>
inline void matvec_t(const double* pt, const double* x,
                     simd::Vec (&acc)[kBlocks<S>]) {
  constexpr int W = simd::kLanes;
  for (int b = 0; b < kBlocks<S>; ++b) acc[b] = simd::zero();
  for (int j = 0; j < S; ++j) {
    const simd::Vec xj = simd::set1(x[j]);
    const double* col = pt + j * S;
    for (int b = 0; b < kBlocks<S>; ++b)
      acc[b] = simd::fma(xj, simd::load(col + b * W), acc[b]);
  }
}

}  // namespace plk::kernel
