// Shared building blocks for the specialized SIMD kernels.
//
// Everything here depends on the compile-time SIMD backend, so the contents
// live inside the backend's inline namespace (PLK_SIMD_NS_BEGIN): each
// runtime-dispatch backend TU gets its own instantiations with distinct
// mangled names. The AVX-512 backend (8 lanes) is excluded — neither state
// count is a multiple of 8, so it has dedicated kernels in avx512.hpp.
#pragma once

#include "core/kernels/generic.hpp"
#include "util/simd.hpp"

#if !defined(PLK_SIMD_AVX512)

namespace plk::kernel {
PLK_SIMD_NS_BEGIN

/// Lane-blocks per state vector. Both supported state counts (4, 20) are
/// multiples of every width-agnostic backend's lane count (4/2/1), so the
/// kernels iterate whole blocks with no remainder handling.
template <int S>
inline constexpr int kBlocks = S / simd::kLanes;

/// acc[b] = P^T x, i.e. acc covers s[a] = sum_j P[a][j] * x[j] for all a,
/// with `pt` the transposed matrix [j][a] for one category. Accumulates j in
/// ascending order, matching the generic scalar loop's summation order
/// (up to FMA rounding).
template <int S>
inline void matvec_t(const double* pt, const double* x,
                     simd::Vec (&acc)[kBlocks<S>]) {
  constexpr int W = simd::kLanes;
  for (int b = 0; b < kBlocks<S>; ++b) acc[b] = simd::zero();
  for (int j = 0; j < S; ++j) {
    const simd::Vec xj = simd::set1(x[j]);
    const double* col = pt + j * S;
    for (int b = 0; b < kBlocks<S>; ++b)
      acc[b] = simd::fma(xj, simd::load(col + b * W), acc[b]);
  }
}

/// Two transposed mat-vec products against the SAME matrix, for two patterns
/// at once: each column is loaded once and feeds two independent FMA chains,
/// doubling the instruction-level parallelism of the latency-bound S=4 case
/// while halving the matrix load traffic. Each accumulator sees exactly the
/// operation sequence matvec_t would give it, so results are bit-identical
/// to two separate matvec_t calls.
template <int S>
inline void matvec_t2(const double* pt, const double* x0, const double* x1,
                      simd::Vec (&a0)[kBlocks<S>],
                      simd::Vec (&a1)[kBlocks<S>]) {
  constexpr int W = simd::kLanes;
  for (int b = 0; b < kBlocks<S>; ++b) {
    a0[b] = simd::zero();
    a1[b] = simd::zero();
  }
  for (int j = 0; j < S; ++j) {
    const simd::Vec xj0 = simd::set1(x0[j]);
    const simd::Vec xj1 = simd::set1(x1[j]);
    const double* col = pt + j * S;
    for (int b = 0; b < kBlocks<S>; ++b) {
      const simd::Vec c = simd::load(col + b * W);
      a0[b] = simd::fma(xj0, c, a0[b]);
      a1[b] = simd::fma(xj1, c, a1[b]);
    }
  }
}

PLK_SIMD_NS_END
}  // namespace plk::kernel

#endif  // !PLK_SIMD_AVX512
