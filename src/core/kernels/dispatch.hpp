// Runtime SIMD backend dispatch for the specialized kernels.
//
// The width-agnostic kernel templates compile against ONE backend per
// translation unit (util/simd.hpp). To pick the instruction set at runtime
// instead — so a single binary can run AVX-512 where the CPU has it, AVX2
// elsewhere, and scalar under test forcing — the library compiles one
// backend TU per instruction set (backend_{scalar,sse2,avx2,avx512,neon}.cpp,
// each pinning a PLK_SIMD_FORCE_* macro and carrying per-source codegen
// flags) and each TU exports a table of function pointers to its
// instantiations. The backend-versioned inline namespaces in the kernel
// headers keep those parallel instantiations ODR-distinct.
//
// Selection happens once per process (first call to active_kernels()):
//   1. PLK_FORCE_SIMD=avx512|avx2|sse2|neon|scalar — explicit override; if
//      the named backend is not compiled in or the CPU lacks it, selection
//      falls back to the best available and describe_active_backend() says
//      so (callers that need hard forcing check name themselves).
//   2. Otherwise the best backend the CPU supports, by CPUID probe.
//
// The table signatures use only unversioned types (ChildView lives in plain
// plk::kernel), so every backend's spec functions share them. Entries are
// the *_spec dispatchers: tip-table fallback rules are per-backend and
// identical everywhere.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "core/kernels/generic.hpp"

namespace plk::kernel {

/// Function-pointer table for one SIMD backend's specialized kernels,
/// instantiated for both supported state counts.
struct KernelTable {
  const char* name = "none";
  int lanes = 0;

  using NewviewFn = void (*)(std::size_t, std::size_t, std::size_t, int,
                             const ChildView&, const ChildView&,
                             const double*, const double*, const double*,
                             const double*, double*, std::int32_t*);
  // evaluate / nr take a trailing RateView (rate-heterogeneity view). The
  // spec functions declare it defaulted, but defaults do not travel through
  // function pointers: every call through this table spells the argument
  // out (kernel::RateView{} for the historic equal-weight behavior).
  using EvaluateFn = double (*)(std::size_t, std::size_t, std::size_t, int,
                                const ChildView&, const ChildView&,
                                const double*, const double*, const double*,
                                const double*, const RateView&);
  using EvaluateSitesFn = void (*)(std::size_t, std::size_t, std::size_t, int,
                                   const ChildView&, const ChildView&,
                                   const double*, const double*,
                                   const double*, double*, const RateView&);
  using SumtableFn = void (*)(std::size_t, std::size_t, std::size_t, int,
                              const ChildView&, const ChildView&,
                              const double*, const double*, double*);
  using NrFn = void (*)(std::size_t, std::size_t, std::size_t, int,
                        const double*, const double*, const double*,
                        const double*, double*, double*, const RateView&);

  NewviewFn newview4 = nullptr;
  NewviewFn newview20 = nullptr;
  EvaluateFn evaluate4 = nullptr;
  EvaluateFn evaluate20 = nullptr;
  EvaluateSitesFn evaluate_sites4 = nullptr;
  EvaluateSitesFn evaluate_sites20 = nullptr;
  SumtableFn sumtable4 = nullptr;
  SumtableFn sumtable20 = nullptr;
  NrFn nr4 = nullptr;
  NrFn nr20 = nullptr;

  template <int S>
  NewviewFn newview() const {
    static_assert(S == 4 || S == 20);
    return S == 4 ? newview4 : newview20;
  }
  template <int S>
  EvaluateFn evaluate() const {
    static_assert(S == 4 || S == 20);
    return S == 4 ? evaluate4 : evaluate20;
  }
  template <int S>
  EvaluateSitesFn evaluate_sites() const {
    static_assert(S == 4 || S == 20);
    return S == 4 ? evaluate_sites4 : evaluate_sites20;
  }
  template <int S>
  SumtableFn sumtable() const {
    static_assert(S == 4 || S == 20);
    return S == 4 ? sumtable4 : sumtable20;
  }
  template <int S>
  NrFn nr() const {
    static_assert(S == 4 || S == 20);
    return S == 4 ? nr4 : nr20;
  }
};

/// The table selected for this process (PLK_FORCE_SIMD override, else the
/// best backend this CPU supports). Stable after the first call.
const KernelTable& active_kernels();

/// Table for a named backend, or nullptr when it is not compiled into this
/// binary or the CPU lacks the instruction set. Names as in PLK_FORCE_SIMD.
const KernelTable* find_backend(std::string_view name);

/// Every backend usable on this machine, best (widest) first. Always
/// non-empty: scalar is compiled in unconditionally.
std::vector<const KernelTable*> available_backends();

/// One-line human-readable description of the active selection, e.g.
/// "avx512 (auto, 8 lanes)" or "scalar (PLK_FORCE_SIMD)", including a note
/// when a forced backend was unavailable. For startup logging.
std::string describe_active_backend();

}  // namespace plk::kernel
