// Runtime-dispatch backend TU: AVX2.
//
// CMake compiles this file with -mavx2 -mfma on x86 GNU/Clang, which defines
// __AVX2__ here even when the rest of the build targets baseline x86-64; the
// dispatcher only hands this table out after a CPUID probe. Compiles to an
// empty table when AVX2 codegen is unavailable or under a global
// PLK_SIMD_FORCE_SCALAR build.
#if !defined(PLK_SIMD_FORCE_SCALAR) && defined(__AVX2__)

#define PLK_SIMD_FORCE_AVX2 1
#include "core/kernels/backend_impl.hpp"

namespace plk::kernel {

const KernelTable* backend_table_avx2() {
  static const KernelTable t = make_backend_table();
  return &t;
}

}  // namespace plk::kernel

#else

#include "core/kernels/dispatch.hpp"

namespace plk::kernel {

const KernelTable* backend_table_avx2() { return nullptr; }

}  // namespace plk::kernel

#endif
