// Runtime-dispatch backend TU: scalar (always compiled, universal fallback).
#ifndef PLK_SIMD_FORCE_SCALAR
#define PLK_SIMD_FORCE_SCALAR 1
#endif
#include "core/kernels/backend_impl.hpp"

namespace plk::kernel {

const KernelTable* backend_table_scalar() {
  static const KernelTable t = make_backend_table();
  return &t;
}

}  // namespace plk::kernel
