// Runtime SIMD backend selection (see dispatch.hpp).
#include "core/kernels/dispatch.hpp"

#include <cstdlib>
#include <cstring>

namespace plk::kernel {

// Exported by the backend TUs; nullptr when a backend is not compiled in.
const KernelTable* backend_table_scalar();
const KernelTable* backend_table_sse2();
const KernelTable* backend_table_avx2();
const KernelTable* backend_table_avx512();
const KernelTable* backend_table_neon();

namespace {

bool cpu_supports(const char* name) {
#if (defined(__x86_64__) || defined(__i386__)) && \
    (defined(__GNUC__) || defined(__clang__))
  if (std::strcmp(name, "avx512") == 0)
    return __builtin_cpu_supports("avx512f") &&
           __builtin_cpu_supports("avx512dq");
  if (std::strcmp(name, "avx2") == 0) return __builtin_cpu_supports("avx2");
#else
  // Off x86 the only tables that exist (scalar, neon) are baseline.
  if (std::strcmp(name, "avx512") == 0 || std::strcmp(name, "avx2") == 0)
    return false;
#endif
  // sse2 is the x86-64 baseline, neon the aarch64 baseline, scalar universal;
  // their tables exist only on targets where they run.
  return true;
}

struct Selection {
  const KernelTable* table = nullptr;
  std::string how;  // "auto" or "PLK_FORCE_SIMD" (+ fallback note)
};

Selection select() {
  std::vector<const KernelTable*> avail = available_backends();
  Selection s;
  s.table = avail.front();  // never empty: scalar is unconditional
  s.how = "auto";
  const char* force = std::getenv("PLK_FORCE_SIMD");
  if (force != nullptr && force[0] != '\0') {
    for (const KernelTable* t : avail) {
      if (std::strcmp(t->name, force) == 0) {
        s.table = t;
        s.how = "PLK_FORCE_SIMD";
        return s;
      }
    }
    s.how = std::string("auto; PLK_FORCE_SIMD=") + force +
            " unavailable on this build/CPU";
  }
  return s;
}

const Selection& selection() {
  static const Selection s = select();
  return s;
}

}  // namespace

std::vector<const KernelTable*> available_backends() {
  const KernelTable* candidates[] = {
      backend_table_avx512(), backend_table_avx2(), backend_table_neon(),
      backend_table_sse2(), backend_table_scalar()};
  std::vector<const KernelTable*> avail;
  for (const KernelTable* t : candidates)
    if (t != nullptr && cpu_supports(t->name)) avail.push_back(t);
  return avail;
}

const KernelTable* find_backend(std::string_view name) {
  for (const KernelTable* t : available_backends())
    if (name == t->name) return t;
  return nullptr;
}

const KernelTable& active_kernels() { return *selection().table; }

std::string describe_active_backend() {
  const Selection& s = selection();
  return std::string(s.table->name) + " (" + s.how + ", " +
         std::to_string(s.table->lanes) +
         (s.table->lanes == 1 ? " lane)" : " lanes)");
}

}  // namespace plk::kernel
