// Shared raw-buffer fixture for kernel golden tests and benchmarks.
//
// Builds every input the kernels consume, in the exact shapes the engine
// produces — random inner CLVs with nonzero scale counts, a tip child with
// one-hot/ambiguity/gap indicator codes, per-category transition matrices
// from a real substitution model (row-major + transposed), precomputed tip
// lookup tables, the sumtable transform, and Newton-Raphson tables — so
// tests and benches exercise generic and specialized kernels on identical
// data. Not used by the engine itself.
#pragma once

#include <cmath>
#include <cstdint>
#include <vector>

#include "core/kernels.hpp"
#include "model/subst_model.hpp"
#include "util/rng.hpp"

namespace plk::kernel {

template <int S>
struct KernelRig {
  std::size_t patterns;
  int cats;
  std::size_t stride;
  std::vector<double> clv1, clv2, out, sumtab;
  std::vector<std::int32_t> scale1, scale2, out_scale;
  std::vector<std::uint16_t> codes;
  std::vector<double> indicators;  // n_codes x S
  std::size_t n_codes = static_cast<std::size_t>(S) + 2;
  std::vector<double> p1, p2, p1t, p2t;    // [cat][i][j] and transposes
  std::vector<double> tip_tab1, tip_tab2;  // P x indicator tables
  std::vector<double> sym, symt, sym_tab;  // sumtable transform + tip table
  std::vector<double> freqs, weights;
  std::vector<double> exp_lam, lam;  // NR inputs at b = 0.23
  // Rate-heterogeneity fixtures (free-rates + invariant sites): non-uniform
  // category weights with (1 - p_inv) folded in, a per-pattern invariant
  // contribution (zero on most patterns, as real alignments produce), root
  // scale counts for the NR fold, and the exp table with the weights folded
  // (the engine's NR contract for non-uniform categories).
  std::vector<double> cat_w, inv_contrib, exp_lam_w;
  std::vector<std::int32_t> root_scale;
  static constexpr double kPinv = 0.15;
  SubstModel model;

  /// `tiny_values` fills the CLVs with ~1e-80 entries so every newview
  /// pattern falls below the scaling threshold (scale-count tests).
  explicit KernelRig(std::size_t patterns_in, int cats_in,
                     bool tiny_values = false)
      : patterns(patterns_in),
        cats(cats_in),
        stride(static_cast<std::size_t>(cats_in) * S),
        model(S == 4 ? gtr({1.5, 2.0, 0.6, 1.1, 3.0, 1.0},
                           {0.3, 0.2, 0.2, 0.3})
                     : protein_model("WAG")) {
    Rng rng{1234 + S};
    clv1.resize(patterns * stride);
    clv2.resize(patterns * stride);
    out.resize(patterns * stride);
    sumtab.resize(patterns * stride);
    scale1.resize(patterns);
    scale2.resize(patterns);
    out_scale.assign(patterns, 0);
    const double lo = tiny_values ? 1e-80 : 0.1;
    const double hi = tiny_values ? 2e-80 : 1.0;
    for (auto& x : clv1) x = rng.uniform(lo, hi);
    for (auto& x : clv2) x = rng.uniform(lo, hi);
    for (std::size_t i = 0; i < patterns; ++i) {
      scale1[i] = static_cast<std::int32_t>(i % 3);
      scale2[i] = static_cast<std::int32_t>(i % 2);
    }

    // Indicator catalog: every one-hot state plus one two-state ambiguity
    // and the all-gap mask, as real partitions produce.
    indicators.assign(n_codes * S, 0.0);
    for (int s = 0; s < S; ++s)
      indicators[static_cast<std::size_t>(s) * S + s] = 1.0;
    indicators[static_cast<std::size_t>(S) * S + 0] = 1.0;  // ambiguity {0,2}
    indicators[static_cast<std::size_t>(S) * S + 2] = 1.0;
    for (int s = 0; s < S; ++s)
      indicators[(n_codes - 1) * S + static_cast<std::size_t>(s)] = 1.0;
    codes.resize(patterns);
    for (std::size_t i = 0; i < patterns; ++i)
      codes[i] = static_cast<std::uint16_t>(i % n_codes);

    // Transition matrices per category at two branch lengths, plus
    // transposes and tip lookup tables.
    Matrix pm;
    const std::size_t ss = static_cast<std::size_t>(S) * S;
    for (int c = 0; c < cats; ++c) {
      const double r = 0.2 + 0.45 * c;
      model.transition_matrix(0.13 * r, pm);
      p1.insert(p1.end(), pm.data(), pm.data() + ss);
      model.transition_matrix(0.21 * r, pm);
      p2.insert(p2.end(), pm.data(), pm.data() + ss);
    }
    p1t.resize(p1.size());
    p2t.resize(p2.size());
    transpose_pmats<S>(p1.data(), cats, p1t.data());
    transpose_pmats<S>(p2.data(), cats, p2t.data());
    tip_tab1.resize(n_codes * stride);
    tip_tab2.resize(n_codes * stride);
    build_tip_table<S>(p1.data(), cats, indicators.data(), n_codes,
                       tip_tab1.data());
    build_tip_table<S>(p2.data(), cats, indicators.data(), n_codes,
                       tip_tab2.data());

    sym.assign(model.sym_transform().data(),
               model.sym_transform().data() + ss);
    symt.resize(ss);
    transpose_pmats<S>(sym.data(), 1, symt.data());
    sym_tab.resize(n_codes * S);
    build_sym_tip_table<S>(sym.data(), indicators.data(), n_codes,
                           sym_tab.data());

    freqs = model.freqs();
    weights.resize(patterns);
    for (std::size_t i = 0; i < patterns; ++i) weights[i] = 1.0 + (i % 4);

    const double b = 0.23;
    exp_lam.resize(stride);
    lam.resize(stride);
    for (int c = 0; c < cats; ++c)
      for (int k = 0; k < S; ++k) {
        const double r = 0.2 + 0.45 * c;
        lam[static_cast<std::size_t>(c) * S + k] =
            model.eigenvalues()[static_cast<std::size_t>(k)] * r;
        exp_lam[static_cast<std::size_t>(c) * S + k] =
            std::exp(lam[static_cast<std::size_t>(c) * S + k] * b);
      }

    cat_w.resize(static_cast<std::size_t>(cats));
    double wsum = 0.0;
    for (int c = 0; c < cats; ++c) {
      cat_w[static_cast<std::size_t>(c)] = 1.0 + 0.3 * c;
      wsum += cat_w[static_cast<std::size_t>(c)];
    }
    for (auto& w : cat_w) w *= (1.0 - kPinv) / wsum;
    inv_contrib.resize(patterns);
    root_scale.resize(patterns);
    for (std::size_t i = 0; i < patterns; ++i) {
      inv_contrib[i] = i % 3 == 0 ? kPinv * freqs[i % S] : 0.0;
      root_scale[i] = static_cast<std::int32_t>(i % 2);
    }
    exp_lam_w.resize(stride);
    for (int c = 0; c < cats; ++c)
      for (int k = 0; k < S; ++k)
        exp_lam_w[static_cast<std::size_t>(c) * S + k] =
            exp_lam[static_cast<std::size_t>(c) * S + k] *
            cat_w[static_cast<std::size_t>(c)];

    // A ready sumtable for the NR kernels.
    sumtable_slice<S>(0, patterns, 1, cats, inner1(), inner2(), sym.data(),
                      sumtab.data());
  }

  /// Weighted-category + invariant-sites view for evaluate kernels.
  RateView rate_view() const {
    RateView rv;
    rv.cat_w = cat_w.data();
    rv.inv = inv_contrib.data();
    return rv;
  }
  /// NR variant: weights ride in exp_lam_w, the view adds +I and scales.
  RateView nr_rate_view() const {
    RateView rv;
    rv.inv = inv_contrib.data();
    rv.scale = root_scale.data();
    return rv;
  }

  ChildView inner1() const {
    ChildView v;
    v.clv = clv1.data();
    v.scale = scale1.data();
    return v;
  }
  ChildView inner2() const {
    ChildView v;
    v.clv = clv2.data();
    v.scale = scale2.data();
    return v;
  }
  ChildView tip(const std::vector<double>& tab) const {
    ChildView v;
    v.codes = codes.data();
    v.indicators = indicators.data();
    v.tip_table = tab.data();
    return v;
  }
  ChildView tip1() const { return tip(tip_tab1); }
  ChildView tip2() const { return tip(tip_tab2); }
  /// Tip view carrying the sym lookup table (for sumtable kernels).
  ChildView tip_sym() const { return tip(sym_tab); }

  /// Child for slot 1/2 by kind ('t' = tip, 'i' = inner), with the matching
  /// P-product tip table.
  ChildView child(int slot, char kind) const {
    if (kind == 't') return slot == 1 ? tip1() : tip2();
    return slot == 1 ? inner1() : inner2();
  }
};

}  // namespace plk::kernel
