// Specialized SIMD branch-length derivative kernels: the Newton-Raphson
// sumtable and the d1/d2 reduction.
//
// The sumtable's symmetric transform depends only on the model (not the
// branch length or rate category), so a tip child's sym x indicator products
// are precomputed per model update (kernel::build_sym_tip_table, layout
// [code][k]) and hoisted out of the category loop entirely. The nr pass is a
// pure streaming reduction with no tip cases.
#pragma once

#include "core/kernels/common.hpp"
#include "core/kernels/generic.hpp"

namespace plk::kernel {

namespace detail {

template <int S, bool TipU, bool TipV>
void sumtable_core(std::size_t begin, std::size_t end, std::size_t step,
                   int cats, const ChildView& cu, const ChildView& cv,
                   const double* symt, double* out) {
  constexpr int W = simd::kLanes;
  constexpr int B = kBlocks<S>;
  const std::size_t stride = static_cast<std::size_t>(cats) * S;
  for (std::size_t i = begin; i < end; i += step) {
    const double* lu =
        TipU ? cu.tip_table + static_cast<std::size_t>(cu.codes[i]) * S
             : cu.clv + i * stride;
    const double* lv =
        TipV ? cv.tip_table + static_cast<std::size_t>(cv.codes[i]) * S
             : cv.clv + i * stride;
    double* o = out + i * stride;

    // Tip-side coordinates are category-invariant: load once per pattern.
    simd::Vec xu[B], xv[B];
    if constexpr (TipU)
      for (int b = 0; b < B; ++b) xu[b] = simd::load(lu + b * W);
    if constexpr (TipV)
      for (int b = 0; b < B; ++b) xv[b] = simd::load(lv + b * W);

    for (int c = 0; c < cats; ++c) {
      if constexpr (!TipU)
        matvec_t<S>(symt, lu + static_cast<std::size_t>(c) * S, xu);
      if constexpr (!TipV)
        matvec_t<S>(symt, lv + static_cast<std::size_t>(c) * S, xv);
      double* oc = o + static_cast<std::size_t>(c) * S;
      for (int b = 0; b < B; ++b)
        simd::store(oc + b * W, simd::mul(xu[b], xv[b]));
    }
  }
}

}  // namespace detail

/// Dispatch sumtable to the tip-case specialization. Tip children must carry
/// a sym tip table ([code][k], build_sym_tip_table) to take a specialized
/// path. `sym` is the row-major transform (generic fallback), `symt` its
/// transpose ([j][k]).
template <int S>
void sumtable_spec(std::size_t begin, std::size_t end, std::size_t step,
                   int cats, const ChildView& cu, const ChildView& cv,
                   const double* sym, const double* symt, double* out) {
  const bool tu = cu.is_tip(), tv = cv.is_tip();
  if ((tu && cu.tip_table == nullptr) || (tv && cv.tip_table == nullptr)) {
    sumtable_slice<S>(begin, end, step, cats, cu, cv, sym, out);
    return;
  }
  if (tu && tv)
    detail::sumtable_core<S, true, true>(begin, end, step, cats, cu, cv, symt,
                                         out);
  else if (tu)
    detail::sumtable_core<S, true, false>(begin, end, step, cats, cu, cv,
                                          symt, out);
  else if (tv)
    detail::sumtable_core<S, false, true>(begin, end, step, cats, cu, cv,
                                          symt, out);
  else
    detail::sumtable_core<S, false, false>(begin, end, step, cats, cu, cv,
                                           symt, out);
}

/// SIMD Newton-Raphson derivative reduction (same contract as nr_slice).
template <int S>
void nr_spec(std::size_t begin, std::size_t end, std::size_t step, int cats,
             const double* sumtable, const double* exp_lam, const double* lam,
             const double* weights, double* out_d1, double* out_d2) {
  constexpr int W = simd::kLanes;
  constexpr int B = kBlocks<S>;
  const std::size_t stride = static_cast<std::size_t>(cats) * S;
  double d1 = 0.0, d2 = 0.0;
  for (std::size_t i = begin; i < end; i += step) {
    const double* st = sumtable + i * stride;
    simd::Vec vf = simd::zero(), vf1 = simd::zero(), vf2 = simd::zero();
    for (int c = 0; c < cats; ++c) {
      const double* stc = st + static_cast<std::size_t>(c) * S;
      const double* ec = exp_lam + static_cast<std::size_t>(c) * S;
      const double* lc = lam + static_cast<std::size_t>(c) * S;
      for (int b = 0; b < B; ++b) {
        const simd::Vec x =
            simd::mul(simd::load(stc + b * W), simd::load(ec + b * W));
        const simd::Vec l = simd::load(lc + b * W);
        const simd::Vec lx = simd::mul(l, x);
        vf = simd::add(vf, x);
        vf1 = simd::add(vf1, lx);
        vf2 = simd::fma(l, lx, vf2);
      }
    }
    double f = simd::reduce_add(vf);
    const double f1 = simd::reduce_add(vf1);
    const double f2 = simd::reduce_add(vf2);
    if (f < 1e-300) f = 1e-300;
    const double r = f1 / f;
    d1 += weights[i] * r;
    d2 += weights[i] * (f2 / f - r * r);
  }
  *out_d1 = d1;
  *out_d2 = d2;
}

}  // namespace plk::kernel
