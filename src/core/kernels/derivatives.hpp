// Specialized SIMD branch-length derivative kernels: the Newton-Raphson
// sumtable and the d1/d2 reduction.
//
// The sumtable's symmetric transform depends only on the model (not the
// branch length or rate category), so a tip child's sym x indicator products
// are precomputed per model update (kernel::build_sym_tip_table, layout
// [code][k]) and hoisted out of the category loop entirely. The nr pass is a
// pure streaming reduction with no tip cases.
//
// The S=4 nr path processes TWO patterns per iteration: at four states each
// pattern's f/f1/f2 accumulation is a short dependent chain capped by three
// horizontal reductions, so pairing patterns (i, i+step) runs six
// independent accumulator chains and shares the exp_lam/lam loads (which are
// pattern-invariant) between both patterns. Per-pattern arithmetic and the
// weighted d1/d2 left-fold order are unchanged — results are bit-identical
// to the single-pattern path.
//
// Not compiled for the AVX-512 backend (dedicated layouts in avx512.hpp).
#pragma once

#include "core/kernels/common.hpp"
#include "core/kernels/generic.hpp"

#if !defined(PLK_SIMD_AVX512)

namespace plk::kernel {
PLK_SIMD_NS_BEGIN

namespace detail {

template <int S, bool TipU, bool TipV>
void sumtable_core(std::size_t begin, std::size_t end, std::size_t step,
                   int cats, const ChildView& cu, const ChildView& cv,
                   const double* symt, double* out) {
  constexpr int W = simd::kLanes;
  constexpr int B = kBlocks<S>;
  const std::size_t stride = static_cast<std::size_t>(cats) * S;
  for (std::size_t i = begin; i < end; i += step) {
    const double* lu =
        TipU ? cu.tip_table + static_cast<std::size_t>(cu.codes[i]) * S
             : cu.clv + i * stride;
    const double* lv =
        TipV ? cv.tip_table + static_cast<std::size_t>(cv.codes[i]) * S
             : cv.clv + i * stride;
    double* o = out + i * stride;

    // Tip-side coordinates are category-invariant: load once per pattern.
    simd::Vec xu[B], xv[B];
    if constexpr (TipU)
      for (int b = 0; b < B; ++b) xu[b] = simd::load(lu + b * W);
    if constexpr (TipV)
      for (int b = 0; b < B; ++b) xv[b] = simd::load(lv + b * W);

    for (int c = 0; c < cats; ++c) {
      if constexpr (!TipU)
        matvec_t<S>(symt, lu + static_cast<std::size_t>(c) * S, xu);
      if constexpr (!TipV)
        matvec_t<S>(symt, lv + static_cast<std::size_t>(c) * S, xv);
      double* oc = o + static_cast<std::size_t>(c) * S;
      for (int b = 0; b < B; ++b)
        simd::store(oc + b * W, simd::mul(xu[b], xv[b]));
    }
  }
}

}  // namespace detail

/// Dispatch sumtable to the tip-case specialization. Tip children must carry
/// a sym tip table ([code][k], build_sym_tip_table) to take a specialized
/// path. `sym` is the row-major transform (generic fallback), `symt` its
/// transpose ([j][k]).
template <int S>
void sumtable_spec(std::size_t begin, std::size_t end, std::size_t step,
                   int cats, const ChildView& cu, const ChildView& cv,
                   const double* sym, const double* symt, double* out) {
  const bool tu = cu.is_tip(), tv = cv.is_tip();
  if ((tu && cu.tip_table == nullptr) || (tv && cv.tip_table == nullptr)) {
    sumtable_slice<S>(begin, end, step, cats, cu, cv, sym, out);
    return;
  }
  if (tu && tv)
    detail::sumtable_core<S, true, true>(begin, end, step, cats, cu, cv, symt,
                                         out);
  else if (tu)
    detail::sumtable_core<S, true, false>(begin, end, step, cats, cu, cv,
                                          symt, out);
  else if (tv)
    detail::sumtable_core<S, false, true>(begin, end, step, cats, cu, cv,
                                          symt, out);
  else
    detail::sumtable_core<S, false, false>(begin, end, step, cats, cu, cv,
                                           symt, out);
}

/// SIMD Newton-Raphson derivative reduction (same contract as nr_slice:
/// category weights arrive folded into exp_lam, rv carries only the +I
/// term).
template <int S>
void nr_spec(std::size_t begin, std::size_t end, std::size_t step, int cats,
             const double* sumtable, const double* exp_lam, const double* lam,
             const double* weights, double* out_d1, double* out_d2,
             const RateView& rv = {}) {
  constexpr int W = simd::kLanes;
  constexpr int B = kBlocks<S>;
  const std::size_t stride = static_cast<std::size_t>(cats) * S;
  double d1 = 0.0, d2 = 0.0;
  std::size_t i = begin;
  if constexpr (S == 4) {
    for (; i < end && i + step < end; i += 2 * step) {
      const std::size_t i1 = i + step;
      const double* st0 = sumtable + i * stride;
      const double* st1 = sumtable + i1 * stride;
      simd::Vec vfa = simd::zero(), vf1a = simd::zero(), vf2a = simd::zero();
      simd::Vec vfb = simd::zero(), vf1b = simd::zero(), vf2b = simd::zero();
      for (int c = 0; c < cats; ++c) {
        const std::size_t coff = static_cast<std::size_t>(c) * S;
        for (int b = 0; b < B; ++b) {
          const simd::Vec e = simd::load(exp_lam + coff + b * W);
          const simd::Vec l = simd::load(lam + coff + b * W);
          const simd::Vec x0 = simd::mul(simd::load(st0 + coff + b * W), e);
          const simd::Vec x1 = simd::mul(simd::load(st1 + coff + b * W), e);
          const simd::Vec lx0 = simd::mul(l, x0);
          const simd::Vec lx1 = simd::mul(l, x1);
          vfa = simd::add(vfa, x0);
          vfb = simd::add(vfb, x1);
          vf1a = simd::add(vf1a, lx0);
          vf1b = simd::add(vf1b, lx1);
          vf2a = simd::fma(l, lx0, vf2a);
          vf2b = simd::fma(l, lx1, vf2b);
        }
      }
      const double fa = simd::reduce_add(vfa);
      const double f1a = simd::reduce_add(vf1a);
      const double f2a = simd::reduce_add(vf2a);
      const double fb = simd::reduce_add(vfb);
      const double f1b = simd::reduce_add(vf1b);
      const double f2b = simd::reduce_add(vf2b);
      nr_fold(fa, f1a, f2a, weights[i], rv.inv ? rv.inv[i] : 0.0,
              rv.scale ? rv.scale[i] : 0, d1, d2);
      nr_fold(fb, f1b, f2b, weights[i1], rv.inv ? rv.inv[i1] : 0.0,
              rv.scale ? rv.scale[i1] : 0, d1, d2);
    }
  }
  for (; i < end; i += step) {
    const double* st = sumtable + i * stride;
    simd::Vec vf = simd::zero(), vf1 = simd::zero(), vf2 = simd::zero();
    for (int c = 0; c < cats; ++c) {
      const double* stc = st + static_cast<std::size_t>(c) * S;
      const double* ec = exp_lam + static_cast<std::size_t>(c) * S;
      const double* lc = lam + static_cast<std::size_t>(c) * S;
      for (int b = 0; b < B; ++b) {
        const simd::Vec x =
            simd::mul(simd::load(stc + b * W), simd::load(ec + b * W));
        const simd::Vec l = simd::load(lc + b * W);
        const simd::Vec lx = simd::mul(l, x);
        vf = simd::add(vf, x);
        vf1 = simd::add(vf1, lx);
        vf2 = simd::fma(l, lx, vf2);
      }
    }
    const double f = simd::reduce_add(vf);
    const double f1 = simd::reduce_add(vf1);
    const double f2 = simd::reduce_add(vf2);
    nr_fold(f, f1, f2, weights[i], rv.inv ? rv.inv[i] : 0.0,
            rv.scale ? rv.scale[i] : 0, d1, d2);
  }
  *out_d1 = d1;
  *out_d2 = d2;
}

PLK_SIMD_NS_END
}  // namespace plk::kernel

#endif  // !PLK_SIMD_AVX512
