// Shared body for the runtime-dispatch backend TUs.
//
// Each backend_<isa>.cpp defines its PLK_SIMD_FORCE_* macro and THEN
// includes this header, so every template below instantiates against that
// backend (inside its inline namespace — see util/simd.hpp). The resulting
// KernelTable carries plain function pointers with unversioned signatures,
// which is the only thing that crosses the TU boundary.
//
// NOT an ordinary header: include it only from a backend TU.
#pragma once

#include "core/kernels.hpp"
#include "core/kernels/dispatch.hpp"

namespace plk::kernel {
PLK_SIMD_NS_BEGIN

inline KernelTable make_backend_table() {
  KernelTable t;
  t.name = simd::kBackend;
  t.lanes = simd::kLanes;
  t.newview4 = &newview_spec<4>;
  t.newview20 = &newview_spec<20>;
  t.evaluate4 = &evaluate_spec<4>;
  t.evaluate20 = &evaluate_spec<20>;
  t.evaluate_sites4 = &evaluate_sites_spec<4>;
  t.evaluate_sites20 = &evaluate_sites_spec<20>;
  t.sumtable4 = &sumtable_spec<4>;
  t.sumtable20 = &sumtable_spec<20>;
  t.nr4 = &nr_spec<4>;
  t.nr20 = &nr_spec<20>;
  return t;
}

PLK_SIMD_NS_END
}  // namespace plk::kernel
