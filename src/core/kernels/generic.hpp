// Generic scalar reference kernels for the Phylogenetic Likelihood Kernel.
//
// These are the original, straightforward template loops: one code path for
// every tip/inner child combination, S-wide dot products against row-major
// transition matrices. They remain the *reference implementation* — the
// specialized/SIMD paths in newview.hpp / evaluate.hpp / derivatives.hpp are
// golden-tested against these (exact scale counts, 1e-12 relative lnL) and
// the engine can be switched back to them with
// EngineOptions::use_generic_kernels.
//
// All functions operate on one partition's conditional likelihood vectors
// (CLVs) over a *span* of its patterns: begin, begin+step, ... strictly
// below end. The historical cyclic distribution is the span
// (tid, patterns, T); the scheduling layer (parallel/schedule.hpp) can
// instead hand threads contiguous cost-balanced spans (step 1). Pattern i of
// the output depends only on pattern i of the inputs, so any disjoint
// covering set of spans is race-free without intra-traversal barriers.
//
// CLV layout: [pattern][rate_category][state], contiguous doubles.
// Tip children have no CLV; they are represented by per-pattern codes into a
// table of 0/1 indicator vectors (one per distinct state mask occurring in
// the partition), so ambiguity codes cost nothing extra in the inner loop.
//
// Numerical scaling (RAxML style): whenever every entry of a freshly
// computed per-pattern CLV block falls below 2^-256, the block is multiplied
// by 2^256 and the pattern's scale count is incremented; evaluate() subtracts
// count * 256 * ln 2 per site. Newton-Raphson derivative ratios are scale-
// invariant, so nr_derivatives() ignores the counts.
#pragma once

#include <cmath>
#include <cstdint>

namespace plk::kernel {

/// Scaling threshold 2^-256 and its inverse, plus the per-count log term.
inline constexpr double kScaleThreshold = 0x1.0p-256;
inline constexpr double kScaleFactor = 0x1.0p+256;
inline constexpr double kLogScale = 256.0 * 0.69314718055994530942;

/// Describes one child of a newview operation: either an inner-node CLV
/// (clv != nullptr) or a tip (codes != nullptr).
struct ChildView {
  const double* clv = nullptr;        // [pattern][cat][state]
  const std::int32_t* scale = nullptr;  // per-pattern scale counts (inner only)
  const std::uint16_t* codes = nullptr;  // per-pattern indicator codes (tips)
  const double* indicators = nullptr;    // [code][state] 0/1 table (tips)
  /// Optional precomputed lookup table for the specialized kernels (tips
  /// only; built by kernel::build_tip_table / build_sym_tip_table):
  ///   newview/evaluate: [code][cat][state] = P_cat x indicator products
  ///   sumtable:         [code][state]      = sym x indicator products
  /// The generic kernels ignore it.
  const double* tip_table = nullptr;
  bool is_tip() const { return codes != nullptr; }
};

/// Base pointer of child `c`'s likelihood data for pattern `i`: the indicator
/// row for tips, the CLV block for inner nodes. `stride` = cats * S.
template <int S>
inline const double* child_pattern(const ChildView& c, std::size_t i,
                                   std::size_t stride) {
  return c.is_tip() ? c.indicators + static_cast<std::size_t>(c.codes[i]) * S
                    : c.clv + i * stride;
}

/// Category-c view into a child's pattern block: tips have no category
/// dimension (the same indicator row serves every category); inner CLVs
/// advance by S per category.
template <int S>
inline const double* child_cat(const ChildView& c, const double* base, int cat) {
  return c.is_tip() ? base : base + static_cast<std::size_t>(cat) * S;
}

/// Combined scale count of up to two children for pattern `i` (tips carry no
/// scale counts).
inline std::int32_t child_scale(const ChildView& c1, const ChildView& c2,
                                std::size_t i) {
  std::int32_t cnt = 0;
  if (!c1.is_tip()) cnt += c1.scale[i];
  if (!c2.is_tip()) cnt += c2.scale[i];
  return cnt;
}

/// Rate-heterogeneity view for evaluate / nr_derivatives. Every field may be
/// null; a default-constructed RateView selects the historic equal-weight
/// discrete-Gamma behavior bit-for-bit, which is why it is a defaulted
/// trailing parameter on the kernels below.
struct RateView {
  /// Per-category mixture weights with the (1 - p_inv) factor folded in
  /// (RateModel::eval_weights()). Null = the historic uniform 1/cats
  /// averaging, summed across categories first and multiplied once — kept
  /// verbatim so plain-Gamma results stay bit-identical.
  const double* cat_w = nullptr;
  /// Per-pattern invariant-site contribution p_inv * sum of the stationary
  /// frequencies of the states pattern i could be invariant in (0 for
  /// patterns with more than one residue). Null = no +I term.
  const double* inv = nullptr;
  /// Per-pattern scale counts at the virtual root (only consulted by
  /// nr_derivatives when `inv` is set: the sumtable entries carry the CLV
  /// scaling, the invariant term does not, so it must be lifted into the
  /// same scaled units before the ratios are formed).
  const std::int32_t* scale = nullptr;
};

/// Per-site log-likelihood from the (scaled) variable-rate mixture `site`,
/// its scale count, and the unscaled invariant contribution `inv`.
/// inv <= 0 reproduces the historic expression exactly; otherwise the two
/// terms are combined in log space (the scaled mixture can sit hundreds of
/// orders of magnitude below the invariant term, so a naive sum underflows).
inline double site_lnl(double site, std::int32_t scale, double inv) {
  const double guarded = site > 1e-300 ? site : 1e-300;
  const double la =
      std::log(guarded) - static_cast<double>(scale) * kLogScale;
  if (!(inv > 0.0)) return la;
  const double lb = std::log(inv);
  const double hi = la > lb ? la : lb;
  const double lo = la > lb ? lb : la;
  return hi + std::log1p(std::exp(lo - hi));
}

/// Fold one pattern's Newton-Raphson terms into the d1/d2 accumulators.
/// f, f1, f2 are the (scaled) mixture likelihood and its branch-length
/// derivatives; the invariant term is constant in the branch length, so it
/// only enters the denominator — lifted by ldexp into f's scaled units.
/// inv <= 0 reproduces the historic fold exactly. When ldexp overflows to
/// +inf the ratios collapse to 0, which is the right limit: the invariant
/// term dominates and the site's derivative contribution vanishes.
inline void nr_fold(double f, double f1, double f2, double w, double inv,
                    std::int32_t scale, double& d1, double& d2) {
  if (inv > 0.0) f += std::ldexp(inv, 256 * scale);
  if (f < 1e-300) f = 1e-300;
  const double r = f1 / f;
  d1 += w * r;
  d2 += w * (f2 / f - r * r);
}

/// newview: combine two children into the parent CLV.
/// `p1`, `p2`: transition matrices per category, layout [cat][i][j].
template <int S>
void newview_slice(std::size_t begin, std::size_t end, std::size_t step,
                   int cats, const ChildView& c1, const ChildView& c2,
                   const double* p1, const double* p2, double* out,
                   std::int32_t* out_scale) {
  const std::size_t stride = static_cast<std::size_t>(cats) * S;
  for (std::size_t i = begin; i < end; i += step) {
    double* o = out + i * stride;
    const double* l1 = child_pattern<S>(c1, i, stride);
    const double* l2 = child_pattern<S>(c2, i, stride);

    double mx = 0.0;
    for (int c = 0; c < cats; ++c) {
      const double* p1c = p1 + static_cast<std::size_t>(c) * S * S;
      const double* p2c = p2 + static_cast<std::size_t>(c) * S * S;
      const double* l1c = child_cat<S>(c1, l1, c);
      const double* l2c = child_cat<S>(c2, l2, c);
      double* oc = o + static_cast<std::size_t>(c) * S;
      for (int a = 0; a < S; ++a) {
        double s1 = 0.0, s2 = 0.0;
        const double* r1 = p1c + a * S;
        const double* r2 = p2c + a * S;
        for (int j = 0; j < S; ++j) {
          s1 += r1[j] * l1c[j];
          s2 += r2[j] * l2c[j];
        }
        const double v = s1 * s2;
        oc[a] = v;
        mx = v > mx ? v : mx;
      }
    }

    std::int32_t cnt = child_scale(c1, c2, i);
    if (mx < kScaleThreshold && mx > 0.0) {
      for (std::size_t k = 0; k < stride; ++k) o[k] *= kScaleFactor;
      ++cnt;
    }
    out_scale[i] = cnt;
  }
}

/// evaluate: per-thread partial log-likelihood at the virtual root on the
/// branch joining `cu` and `cv`, whose transition matrices for the current
/// branch length are `p` ([cat][i][j], applied to the cv side).
/// `freqs`: stationary frequencies. `weights`: pattern multiplicities.
/// `rv`: optional rate-heterogeneity view (per-category weights, +I term);
/// the default selects the historic equal-weight path bit-for-bit.
template <int S>
double evaluate_slice(std::size_t begin, std::size_t end, std::size_t step,
                      int cats, const ChildView& cu, const ChildView& cv,
                      const double* p, const double* freqs,
                      const double* weights, const RateView& rv = {}) {
  const std::size_t stride = static_cast<std::size_t>(cats) * S;
  const double inv_cats = 1.0 / static_cast<double>(cats);
  double lnl = 0.0;
  for (std::size_t i = begin; i < end; i += step) {
    const double* lu = child_pattern<S>(cu, i, stride);
    const double* lv = child_pattern<S>(cv, i, stride);
    double site = 0.0;
    if (rv.cat_w) {
      for (int c = 0; c < cats; ++c) {
        const double* pc = p + static_cast<std::size_t>(c) * S * S;
        const double* luc = child_cat<S>(cu, lu, c);
        const double* lvc = child_cat<S>(cv, lv, c);
        double site_c = 0.0;
        for (int a = 0; a < S; ++a) {
          double inner = 0.0;
          const double* row = pc + a * S;
          for (int j = 0; j < S; ++j) inner += row[j] * lvc[j];
          site_c += freqs[a] * luc[a] * inner;
        }
        site += rv.cat_w[c] * site_c;
      }
      lnl += weights[i] * site_lnl(site, child_scale(cu, cv, i),
                                   rv.inv ? rv.inv[i] : 0.0);
      continue;
    }
    for (int c = 0; c < cats; ++c) {
      const double* pc = p + static_cast<std::size_t>(c) * S * S;
      const double* luc = child_cat<S>(cu, lu, c);
      const double* lvc = child_cat<S>(cv, lv, c);
      for (int a = 0; a < S; ++a) {
        double inner = 0.0;
        const double* row = pc + a * S;
        for (int j = 0; j < S; ++j) inner += row[j] * lvc[j];
        site += freqs[a] * luc[a] * inner;
      }
    }
    site *= inv_cats;
    const std::int32_t scale = child_scale(cu, cv, i);
    const double guarded = site > 1e-300 ? site : 1e-300;
    lnl += weights[i] *
           (std::log(guarded) - static_cast<double>(scale) * kLogScale);
  }
  return lnl;
}

/// evaluate_sites: per-pattern log-likelihoods (scale-corrected, NOT weight-
/// multiplied) at the virtual root — the PLK's standard per-site output used
/// for site-wise model comparison and topology tests.
template <int S>
void evaluate_sites_slice(std::size_t begin, std::size_t end, std::size_t step,
                          int cats, const ChildView& cu, const ChildView& cv,
                          const double* p, const double* freqs, double* out,
                          const RateView& rv = {}) {
  const std::size_t stride = static_cast<std::size_t>(cats) * S;
  const double inv_cats = 1.0 / static_cast<double>(cats);
  for (std::size_t i = begin; i < end; i += step) {
    const double* lu = child_pattern<S>(cu, i, stride);
    const double* lv = child_pattern<S>(cv, i, stride);
    double site = 0.0;
    if (rv.cat_w) {
      for (int c = 0; c < cats; ++c) {
        const double* pc = p + static_cast<std::size_t>(c) * S * S;
        const double* luc = child_cat<S>(cu, lu, c);
        const double* lvc = child_cat<S>(cv, lv, c);
        double site_c = 0.0;
        for (int a = 0; a < S; ++a) {
          double inner = 0.0;
          const double* row = pc + a * S;
          for (int j = 0; j < S; ++j) inner += row[j] * lvc[j];
          site_c += freqs[a] * luc[a] * inner;
        }
        site += rv.cat_w[c] * site_c;
      }
      out[i] = site_lnl(site, child_scale(cu, cv, i),
                        rv.inv ? rv.inv[i] : 0.0);
      continue;
    }
    for (int c = 0; c < cats; ++c) {
      const double* pc = p + static_cast<std::size_t>(c) * S * S;
      const double* luc = child_cat<S>(cu, lu, c);
      const double* lvc = child_cat<S>(cv, lv, c);
      for (int a = 0; a < S; ++a) {
        double inner = 0.0;
        const double* row = pc + a * S;
        for (int j = 0; j < S; ++j) inner += row[j] * lvc[j];
        site += freqs[a] * luc[a] * inner;
      }
    }
    site *= inv_cats;
    const std::int32_t scale = child_scale(cu, cv, i);
    const double guarded = site > 1e-300 ? site : 1e-300;
    out[i] = std::log(guarded) - static_cast<double>(scale) * kLogScale;
  }
}

/// sumtable: precompute the symmetric-coordinate products for Newton-Raphson
/// branch-length optimization at the virtual root joining `cu` and `cv`.
/// `sym`: the S x S transform with row k = sqrt(pi_i) V_ik.
/// Output layout: [pattern][cat][k].
template <int S>
void sumtable_slice(std::size_t begin, std::size_t end, std::size_t step,
                    int cats, const ChildView& cu, const ChildView& cv,
                    const double* sym, double* out) {
  const std::size_t stride = static_cast<std::size_t>(cats) * S;
  for (std::size_t i = begin; i < end; i += step) {
    const double* lu = child_pattern<S>(cu, i, stride);
    const double* lv = child_pattern<S>(cv, i, stride);
    double* o = out + i * stride;
    for (int c = 0; c < cats; ++c) {
      const double* luc = child_cat<S>(cu, lu, c);
      const double* lvc = child_cat<S>(cv, lv, c);
      double* oc = o + static_cast<std::size_t>(c) * S;
      for (int k = 0; k < S; ++k) {
        const double* row = sym + k * S;
        double x = 0.0, y = 0.0;
        for (int j = 0; j < S; ++j) {
          x += row[j] * luc[j];
          y += row[j] * lvc[j];
        }
        oc[k] = x * y;
      }
    }
  }
}

/// nr_derivatives: first and second derivative of the per-partition log-
/// likelihood with respect to the branch length, from a precomputed sumtable.
/// `exp_lam` layout [cat][k] = exp(lambda_k * r_c * b);
/// `lam` layout [cat][k] = lambda_k * r_c.
/// Per-category mixture weights need no extra input here: the engine folds
/// them into `exp_lam` (each f/f1/f2 term carries exactly one factor of the
/// exponential, so scaling it by w_c weights all three consistently). `rv`
/// only supplies the +I term: rv.inv + rv.scale (per-pattern root scale
/// counts), both null for the historic behavior.
template <int S>
void nr_slice(std::size_t begin, std::size_t end, std::size_t step, int cats,
              const double* sumtable, const double* exp_lam,
              const double* lam, const double* weights, double* out_d1,
              double* out_d2, const RateView& rv = {}) {
  const std::size_t stride = static_cast<std::size_t>(cats) * S;
  double d1 = 0.0, d2 = 0.0;
  for (std::size_t i = begin; i < end; i += step) {
    const double* st = sumtable + i * stride;
    double f = 0.0, f1 = 0.0, f2 = 0.0;
    for (int c = 0; c < cats; ++c) {
      const double* stc = st + static_cast<std::size_t>(c) * S;
      const double* ec = exp_lam + static_cast<std::size_t>(c) * S;
      const double* lc = lam + static_cast<std::size_t>(c) * S;
      for (int k = 0; k < S; ++k) {
        const double x = stc[k] * ec[k];
        f += x;
        f1 += lc[k] * x;
        f2 += lc[k] * lc[k] * x;
      }
    }
    nr_fold(f, f1, f2, weights[i], rv.inv ? rv.inv[i] : 0.0,
            rv.scale ? rv.scale[i] : 0, d1, d2);
  }
  *out_d1 = d1;
  *out_d2 = d2;
}

}  // namespace plk::kernel
