// Specialized SIMD evaluate kernels (total and per-site log-likelihood).
//
// The virtual-root evaluation applies the root branch's transition matrix to
// the `cv` side only; a tip on that side uses its precomputed P x indicator
// lookup table exactly as in newview. The `cu` side is consumed directly
// (freqs[a] * lu[a] * inner[a]), so a tip there just loads its indicator
// row — no table needed. Stationary frequencies are hoisted into registers
// before the pattern loop.
//
// The S=4 path evaluates TWO patterns per iteration: the per-site
// accumulation is a short serial FMA chain whose horizontal reduce_add
// dominates at four states, so pairing patterns (i, i+step) amortizes that
// latency over two independent accumulators and shares the transition-matrix
// column loads. Each pattern's site value is computed with exactly the
// single-pattern operation sequence, and the weighted log-likelihood
// left-fold still adds sites in ascending span order, so results are
// bit-identical to the single-pattern path.
//
// Not compiled for the AVX-512 backend (dedicated layouts in avx512.hpp).
#pragma once

#include "core/kernels/common.hpp"
#include "core/kernels/generic.hpp"

#if !defined(PLK_SIMD_AVX512)

namespace plk::kernel {
PLK_SIMD_NS_BEGIN

namespace detail {

/// Per-pattern site likelihood (before the 1/cats normalization and log).
/// `cw`: optional per-category mixture weights; null keeps the historic
/// unweighted accumulation sequence bit-for-bit.
template <int S, bool TipU, bool TipV>
inline double eval_site(std::size_t i, int cats, std::size_t stride,
                        const ChildView& cu, const ChildView& cv,
                        const double* pt, const simd::Vec (&fr)[kBlocks<S>],
                        const double* cw) {
  constexpr int W = simd::kLanes;
  constexpr int B = kBlocks<S>;
  const double* lu =
      TipU ? cu.indicators + static_cast<std::size_t>(cu.codes[i]) * S
           : cu.clv + i * stride;
  const double* lv =
      TipV ? cv.tip_table + static_cast<std::size_t>(cv.codes[i]) * stride
           : cv.clv + i * stride;
  simd::Vec acc = simd::zero();
  for (int c = 0; c < cats; ++c) {
    const double* luc = TipU ? lu : lu + static_cast<std::size_t>(c) * S;
    const double* lvc = lv + static_cast<std::size_t>(c) * S;
    simd::Vec inner[B];
    if constexpr (TipV) {
      for (int b = 0; b < B; ++b) inner[b] = simd::load(lvc + b * W);
    } else {
      matvec_t<S>(pt + static_cast<std::size_t>(c) * S * S, lvc, inner);
    }
    if (cw) {
      const simd::Vec wc = simd::set1(cw[c]);
      for (int b = 0; b < B; ++b)
        acc = simd::fma(
            simd::mul(simd::mul(fr[b], wc), simd::load(luc + b * W)),
            inner[b], acc);
    } else {
      for (int b = 0; b < B; ++b)
        acc = simd::fma(simd::mul(fr[b], simd::load(luc + b * W)), inner[b],
                        acc);
    }
  }
  return simd::reduce_add(acc);
}

/// Two-pattern site likelihoods (S=4 path; see file comment). Patterns i0
/// and i1 run through the category loop with independent accumulators.
template <int S, bool TipU, bool TipV>
inline void eval_site2(std::size_t i0, std::size_t i1, int cats,
                       std::size_t stride, const ChildView& cu,
                       const ChildView& cv, const double* pt,
                       const simd::Vec (&fr)[kBlocks<S>], const double* cw,
                       double* site0, double* site1) {
  constexpr int W = simd::kLanes;
  constexpr int B = kBlocks<S>;
  const double* lu0 =
      TipU ? cu.indicators + static_cast<std::size_t>(cu.codes[i0]) * S
           : cu.clv + i0 * stride;
  const double* lu1 =
      TipU ? cu.indicators + static_cast<std::size_t>(cu.codes[i1]) * S
           : cu.clv + i1 * stride;
  const double* lv0 =
      TipV ? cv.tip_table + static_cast<std::size_t>(cv.codes[i0]) * stride
           : cv.clv + i0 * stride;
  const double* lv1 =
      TipV ? cv.tip_table + static_cast<std::size_t>(cv.codes[i1]) * stride
           : cv.clv + i1 * stride;
  simd::Vec acc0 = simd::zero(), acc1 = simd::zero();
  for (int c = 0; c < cats; ++c) {
    const std::size_t coff = static_cast<std::size_t>(c) * S;
    const double* luc0 = TipU ? lu0 : lu0 + coff;
    const double* luc1 = TipU ? lu1 : lu1 + coff;
    simd::Vec inner0[B], inner1[B];
    if constexpr (TipV) {
      for (int b = 0; b < B; ++b) {
        inner0[b] = simd::load(lv0 + coff + b * W);
        inner1[b] = simd::load(lv1 + coff + b * W);
      }
    } else {
      matvec_t2<S>(pt + coff * S, lv0 + coff, lv1 + coff, inner0, inner1);
    }
    if (cw) {
      const simd::Vec wc = simd::set1(cw[c]);
      for (int b = 0; b < B; ++b) {
        acc0 = simd::fma(
            simd::mul(simd::mul(fr[b], wc), simd::load(luc0 + b * W)),
            inner0[b], acc0);
        acc1 = simd::fma(
            simd::mul(simd::mul(fr[b], wc), simd::load(luc1 + b * W)),
            inner1[b], acc1);
      }
    } else {
      for (int b = 0; b < B; ++b) {
        acc0 = simd::fma(simd::mul(fr[b], simd::load(luc0 + b * W)),
                         inner0[b], acc0);
        acc1 = simd::fma(simd::mul(fr[b], simd::load(luc1 + b * W)),
                         inner1[b], acc1);
      }
    }
  }
  *site0 = simd::reduce_add(acc0);
  *site1 = simd::reduce_add(acc1);
}

template <int S, bool TipU, bool TipV>
double evaluate_core(std::size_t begin, std::size_t end, std::size_t step,
                     int cats, const ChildView& cu, const ChildView& cv,
                     const double* pt, const double* freqs,
                     const double* weights, const RateView& rv) {
  constexpr int W = simd::kLanes;
  const std::size_t stride = static_cast<std::size_t>(cats) * S;
  const double inv_cats = 1.0 / static_cast<double>(cats);
  simd::Vec fr[kBlocks<S>];
  for (int b = 0; b < kBlocks<S>; ++b) fr[b] = simd::load(freqs + b * W);

  double lnl = 0.0;
  std::size_t i = begin;
  if (rv.cat_w) {
    // Weighted mixture: the site value already includes the category
    // weights (and their (1 - p_inv) factor), so there is no 1/cats
    // normalization; the +I term enters through site_lnl.
    if constexpr (S == 4) {
      for (; i < end && i + step < end; i += 2 * step) {
        const std::size_t i1 = i + step;
        double s0, s1;
        eval_site2<S, TipU, TipV>(i, i1, cats, stride, cu, cv, pt, fr,
                                  rv.cat_w, &s0, &s1);
        lnl += weights[i] * site_lnl(s0, child_scale(cu, cv, i),
                                     rv.inv ? rv.inv[i] : 0.0);
        lnl += weights[i1] * site_lnl(s1, child_scale(cu, cv, i1),
                                      rv.inv ? rv.inv[i1] : 0.0);
      }
    }
    for (; i < end; i += step) {
      const double site = eval_site<S, TipU, TipV>(i, cats, stride, cu, cv,
                                                   pt, fr, rv.cat_w);
      lnl += weights[i] * site_lnl(site, child_scale(cu, cv, i),
                                   rv.inv ? rv.inv[i] : 0.0);
    }
    return lnl;
  }
  if constexpr (S == 4) {
    for (; i < end && i + step < end; i += 2 * step) {
      const std::size_t i1 = i + step;
      double s0, s1;
      eval_site2<S, TipU, TipV>(i, i1, cats, stride, cu, cv, pt, fr, nullptr,
                                &s0, &s1);
      const double site0 = s0 * inv_cats;
      const double site1 = s1 * inv_cats;
      const double g0 = site0 > 1e-300 ? site0 : 1e-300;
      const double g1 = site1 > 1e-300 ? site1 : 1e-300;
      lnl += weights[i] *
             (std::log(g0) -
              static_cast<double>(child_scale(cu, cv, i)) * kLogScale);
      lnl += weights[i1] *
             (std::log(g1) -
              static_cast<double>(child_scale(cu, cv, i1)) * kLogScale);
    }
  }
  for (; i < end; i += step) {
    const double site =
        eval_site<S, TipU, TipV>(i, cats, stride, cu, cv, pt, fr, nullptr) *
        inv_cats;
    const std::int32_t scale = child_scale(cu, cv, i);
    const double guarded = site > 1e-300 ? site : 1e-300;
    lnl += weights[i] *
           (std::log(guarded) - static_cast<double>(scale) * kLogScale);
  }
  return lnl;
}

template <int S, bool TipU, bool TipV>
void evaluate_sites_core(std::size_t begin, std::size_t end, std::size_t step,
                         int cats, const ChildView& cu, const ChildView& cv,
                         const double* pt, const double* freqs, double* out,
                         const RateView& rv) {
  constexpr int W = simd::kLanes;
  const std::size_t stride = static_cast<std::size_t>(cats) * S;
  const double inv_cats = 1.0 / static_cast<double>(cats);
  simd::Vec fr[kBlocks<S>];
  for (int b = 0; b < kBlocks<S>; ++b) fr[b] = simd::load(freqs + b * W);

  std::size_t i = begin;
  if (rv.cat_w) {
    if constexpr (S == 4) {
      for (; i < end && i + step < end; i += 2 * step) {
        const std::size_t i1 = i + step;
        double s0, s1;
        eval_site2<S, TipU, TipV>(i, i1, cats, stride, cu, cv, pt, fr,
                                  rv.cat_w, &s0, &s1);
        out[i] = site_lnl(s0, child_scale(cu, cv, i),
                          rv.inv ? rv.inv[i] : 0.0);
        out[i1] = site_lnl(s1, child_scale(cu, cv, i1),
                           rv.inv ? rv.inv[i1] : 0.0);
      }
    }
    for (; i < end; i += step) {
      const double site = eval_site<S, TipU, TipV>(i, cats, stride, cu, cv,
                                                   pt, fr, rv.cat_w);
      out[i] = site_lnl(site, child_scale(cu, cv, i),
                        rv.inv ? rv.inv[i] : 0.0);
    }
    return;
  }
  if constexpr (S == 4) {
    for (; i < end && i + step < end; i += 2 * step) {
      const std::size_t i1 = i + step;
      double s0, s1;
      eval_site2<S, TipU, TipV>(i, i1, cats, stride, cu, cv, pt, fr, nullptr,
                                &s0, &s1);
      const double site0 = s0 * inv_cats;
      const double site1 = s1 * inv_cats;
      const double g0 = site0 > 1e-300 ? site0 : 1e-300;
      const double g1 = site1 > 1e-300 ? site1 : 1e-300;
      out[i] = std::log(g0) -
               static_cast<double>(child_scale(cu, cv, i)) * kLogScale;
      out[i1] = std::log(g1) -
                static_cast<double>(child_scale(cu, cv, i1)) * kLogScale;
    }
  }
  for (; i < end; i += step) {
    const double site =
        eval_site<S, TipU, TipV>(i, cats, stride, cu, cv, pt, fr, nullptr) *
        inv_cats;
    const std::int32_t scale = child_scale(cu, cv, i);
    const double guarded = site > 1e-300 ? site : 1e-300;
    out[i] = std::log(guarded) - static_cast<double>(scale) * kLogScale;
  }
}

}  // namespace detail

/// Dispatch evaluate to the tip-case specialization; falls back to the
/// generic reference kernel when a tip `cv` has no lookup table. `p` is
/// row-major, `pt` transposed.
template <int S>
double evaluate_spec(std::size_t begin, std::size_t end, std::size_t step,
                     int cats, const ChildView& cu, const ChildView& cv,
                     const double* p, const double* pt, const double* freqs,
                     const double* weights, const RateView& rv = {}) {
  const bool tu = cu.is_tip(), tv = cv.is_tip();
  if (tv && cv.tip_table == nullptr)
    return evaluate_slice<S>(begin, end, step, cats, cu, cv, p, freqs,
                             weights, rv);
  if (tu && tv)
    return detail::evaluate_core<S, true, true>(begin, end, step, cats, cu,
                                                cv, pt, freqs, weights, rv);
  if (tu)
    return detail::evaluate_core<S, true, false>(begin, end, step, cats, cu,
                                                 cv, pt, freqs, weights, rv);
  if (tv)
    return detail::evaluate_core<S, false, true>(begin, end, step, cats, cu,
                                                 cv, pt, freqs, weights, rv);
  return detail::evaluate_core<S, false, false>(begin, end, step, cats, cu,
                                                cv, pt, freqs, weights, rv);
}

/// Per-site variant of evaluate_spec (same dispatch rules).
template <int S>
void evaluate_sites_spec(std::size_t begin, std::size_t end, std::size_t step,
                         int cats, const ChildView& cu, const ChildView& cv,
                         const double* p, const double* pt, const double* freqs,
                         double* out, const RateView& rv = {}) {
  const bool tu = cu.is_tip(), tv = cv.is_tip();
  if (tv && cv.tip_table == nullptr) {
    evaluate_sites_slice<S>(begin, end, step, cats, cu, cv, p, freqs, out,
                            rv);
    return;
  }
  if (tu && tv)
    detail::evaluate_sites_core<S, true, true>(begin, end, step, cats, cu, cv,
                                               pt, freqs, out, rv);
  else if (tu)
    detail::evaluate_sites_core<S, true, false>(begin, end, step, cats, cu,
                                                cv, pt, freqs, out, rv);
  else if (tv)
    detail::evaluate_sites_core<S, false, true>(begin, end, step, cats, cu,
                                                cv, pt, freqs, out, rv);
  else
    detail::evaluate_sites_core<S, false, false>(begin, end, step, cats, cu,
                                                 cv, pt, freqs, out, rv);
}

PLK_SIMD_NS_END
}  // namespace plk::kernel

#endif  // !PLK_SIMD_AVX512
