// Specialized SIMD evaluate kernels (total and per-site log-likelihood).
//
// The virtual-root evaluation applies the root branch's transition matrix to
// the `cv` side only; a tip on that side uses its precomputed P x indicator
// lookup table exactly as in newview. The `cu` side is consumed directly
// (freqs[a] * lu[a] * inner[a]), so a tip there just loads its indicator
// row — no table needed. Stationary frequencies are hoisted into registers
// before the pattern loop.
#pragma once

#include "core/kernels/common.hpp"
#include "core/kernels/generic.hpp"

namespace plk::kernel {

namespace detail {

/// Per-pattern site likelihood (before the 1/cats normalization and log).
template <int S, bool TipU, bool TipV>
inline double eval_site(std::size_t i, int cats, std::size_t stride,
                        const ChildView& cu, const ChildView& cv,
                        const double* pt, const simd::Vec (&fr)[kBlocks<S>]) {
  constexpr int W = simd::kLanes;
  constexpr int B = kBlocks<S>;
  const double* lu =
      TipU ? cu.indicators + static_cast<std::size_t>(cu.codes[i]) * S
           : cu.clv + i * stride;
  const double* lv =
      TipV ? cv.tip_table + static_cast<std::size_t>(cv.codes[i]) * stride
           : cv.clv + i * stride;
  simd::Vec acc = simd::zero();
  for (int c = 0; c < cats; ++c) {
    const double* luc = TipU ? lu : lu + static_cast<std::size_t>(c) * S;
    const double* lvc = lv + static_cast<std::size_t>(c) * S;
    simd::Vec inner[B];
    if constexpr (TipV) {
      for (int b = 0; b < B; ++b) inner[b] = simd::load(lvc + b * W);
    } else {
      matvec_t<S>(pt + static_cast<std::size_t>(c) * S * S, lvc, inner);
    }
    for (int b = 0; b < B; ++b)
      acc = simd::fma(simd::mul(fr[b], simd::load(luc + b * W)), inner[b],
                      acc);
  }
  return simd::reduce_add(acc);
}

template <int S, bool TipU, bool TipV>
double evaluate_core(std::size_t begin, std::size_t end, std::size_t step,
                     int cats, const ChildView& cu, const ChildView& cv,
                     const double* pt, const double* freqs,
                     const double* weights) {
  constexpr int W = simd::kLanes;
  const std::size_t stride = static_cast<std::size_t>(cats) * S;
  const double inv_cats = 1.0 / static_cast<double>(cats);
  simd::Vec fr[kBlocks<S>];
  for (int b = 0; b < kBlocks<S>; ++b) fr[b] = simd::load(freqs + b * W);

  double lnl = 0.0;
  for (std::size_t i = begin; i < end; i += step) {
    const double site =
        eval_site<S, TipU, TipV>(i, cats, stride, cu, cv, pt, fr) * inv_cats;
    const std::int32_t scale = child_scale(cu, cv, i);
    const double guarded = site > 1e-300 ? site : 1e-300;
    lnl += weights[i] *
           (std::log(guarded) - static_cast<double>(scale) * kLogScale);
  }
  return lnl;
}

template <int S, bool TipU, bool TipV>
void evaluate_sites_core(std::size_t begin, std::size_t end, std::size_t step,
                         int cats, const ChildView& cu, const ChildView& cv,
                         const double* pt, const double* freqs, double* out) {
  constexpr int W = simd::kLanes;
  const std::size_t stride = static_cast<std::size_t>(cats) * S;
  const double inv_cats = 1.0 / static_cast<double>(cats);
  simd::Vec fr[kBlocks<S>];
  for (int b = 0; b < kBlocks<S>; ++b) fr[b] = simd::load(freqs + b * W);

  for (std::size_t i = begin; i < end; i += step) {
    const double site =
        eval_site<S, TipU, TipV>(i, cats, stride, cu, cv, pt, fr) * inv_cats;
    const std::int32_t scale = child_scale(cu, cv, i);
    const double guarded = site > 1e-300 ? site : 1e-300;
    out[i] = std::log(guarded) - static_cast<double>(scale) * kLogScale;
  }
}

}  // namespace detail

/// Dispatch evaluate to the tip-case specialization; falls back to the
/// generic reference kernel when a tip `cv` has no lookup table. `p` is
/// row-major, `pt` transposed.
template <int S>
double evaluate_spec(std::size_t begin, std::size_t end, std::size_t step,
                     int cats, const ChildView& cu, const ChildView& cv,
                     const double* p, const double* pt, const double* freqs,
                     const double* weights) {
  const bool tu = cu.is_tip(), tv = cv.is_tip();
  if (tv && cv.tip_table == nullptr)
    return evaluate_slice<S>(begin, end, step, cats, cu, cv, p, freqs,
                             weights);
  if (tu && tv)
    return detail::evaluate_core<S, true, true>(begin, end, step, cats, cu,
                                                cv, pt, freqs, weights);
  if (tu)
    return detail::evaluate_core<S, true, false>(begin, end, step, cats, cu,
                                                 cv, pt, freqs, weights);
  if (tv)
    return detail::evaluate_core<S, false, true>(begin, end, step, cats, cu,
                                                 cv, pt, freqs, weights);
  return detail::evaluate_core<S, false, false>(begin, end, step, cats, cu,
                                                cv, pt, freqs, weights);
}

/// Per-site variant of evaluate_spec (same dispatch rules).
template <int S>
void evaluate_sites_spec(std::size_t begin, std::size_t end, std::size_t step,
                         int cats, const ChildView& cu, const ChildView& cv,
                         const double* p, const double* pt, const double* freqs,
                         double* out) {
  const bool tu = cu.is_tip(), tv = cv.is_tip();
  if (tv && cv.tip_table == nullptr) {
    evaluate_sites_slice<S>(begin, end, step, cats, cu, cv, p, freqs, out);
    return;
  }
  if (tu && tv)
    detail::evaluate_sites_core<S, true, true>(begin, end, step, cats, cu, cv,
                                               pt, freqs, out);
  else if (tu)
    detail::evaluate_sites_core<S, true, false>(begin, end, step, cats, cu,
                                                cv, pt, freqs, out);
  else if (tv)
    detail::evaluate_sites_core<S, false, true>(begin, end, step, cats, cu,
                                                cv, pt, freqs, out);
  else
    detail::evaluate_sites_core<S, false, false>(begin, end, step, cats, cu,
                                                 cv, pt, freqs, out);
}

}  // namespace plk::kernel
