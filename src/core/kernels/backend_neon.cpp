// Runtime-dispatch backend TU: NEON (aarch64 baseline; the ambient backend
// there, mirrored into the dispatch table for uniformity). Compiles to an
// empty table off ARM or under a global PLK_SIMD_FORCE_SCALAR build.
#if !defined(PLK_SIMD_FORCE_SCALAR) && \
    (defined(__ARM_NEON) || defined(__aarch64__))

// The ambient selection already picks NEON on ARM; no force macro needed,
// and none exists (NEON is never cross-forced onto another ISA).
#include "core/kernels/backend_impl.hpp"

namespace plk::kernel {

const KernelTable* backend_table_neon() {
  static const KernelTable t = make_backend_table();
  return &t;
}

}  // namespace plk::kernel

#else

#include "core/kernels/dispatch.hpp"

namespace plk::kernel {

const KernelTable* backend_table_neon() { return nullptr; }

}  // namespace plk::kernel

#endif
