// Runtime-dispatch backend TU: SSE2 (x86-64 baseline, no extra flags).
//
// Compiles to an empty table on non-x86 targets and under a global
// PLK_SIMD_FORCE_SCALAR build (where only the scalar backend may exist).
#if !defined(PLK_SIMD_FORCE_SCALAR) && \
    (defined(__SSE2__) || defined(_M_X64) || defined(__x86_64__))

#define PLK_SIMD_FORCE_SSE2 1
#include "core/kernels/backend_impl.hpp"

namespace plk::kernel {

const KernelTable* backend_table_sse2() {
  static const KernelTable t = make_backend_table();
  return &t;
}

}  // namespace plk::kernel

#else

#include "core/kernels/dispatch.hpp"

namespace plk::kernel {

const KernelTable* backend_table_sse2() { return nullptr; }

}  // namespace plk::kernel

#endif
