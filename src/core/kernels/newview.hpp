// Specialized SIMD newview kernels.
//
// Three tip-case specializations (tip/tip, tip/inner, inner/inner) selected
// at dispatch time, all vectorized over the state dimension:
//
//   * An inner child costs one transposed matrix-vector product per category
//     (column-broadcast FMAs, unit-stride loads — see common.hpp).
//   * A tip child costs a single table-row load: its whole P x indicator
//     product was precomputed into a tip lookup table (tip_table.hpp) when
//     the transition matrix was last updated. In the tip/tip case the inner
//     loop is just two loads, a multiply, and a max.
//
// The S=4 path processes TWO patterns per iteration: at four states a
// matrix-vector product is a serial chain of four FMAs, so a single pattern
// leaves the FMA pipes mostly idle (latency-bound, not throughput-bound).
// Pairing patterns (i, i+step) interleaves four independent accumulator
// chains per category and shares each transition-matrix column load between
// both patterns, which also keeps the two children's CLV tiles for the whole
// categories x 2-patterns block resident in registers/L1. Per-pattern
// arithmetic order is unchanged, so results are bit-identical to the
// single-pattern path. An odd trailing pattern falls through to the
// single-pattern core.
//
// The transition matrices arrive *transposed* ([cat][j][a], see
// kernel::transpose_pmats); the row-major originals are also taken so the
// dispatcher can fall back to the generic reference kernel when a tip child
// has no lookup table.
//
// Not compiled for the AVX-512 backend (8 lanes does not divide S=4/20);
// see avx512.hpp for its dedicated layouts.
#pragma once


#include "core/kernels/common.hpp"
#include "core/kernels/generic.hpp"

#if !defined(PLK_SIMD_AVX512)

namespace plk::kernel {
PLK_SIMD_NS_BEGIN

namespace detail {

template <int S, bool Tip1, bool Tip2>
void newview_core(std::size_t begin, std::size_t end, std::size_t step,
                  int cats, const ChildView& c1, const ChildView& c2,
                  const double* p1t, const double* p2t, double* out,
                  std::int32_t* out_scale) {
  constexpr int W = simd::kLanes;
  constexpr int B = kBlocks<S>;
  const std::size_t stride = static_cast<std::size_t>(cats) * S;
  for (std::size_t i = begin; i < end; i += step) {
    double* o = out + i * stride;
    // Tip tables share the CLV's [.][cat][state] layout, so the per-category
    // addressing below is identical for both child kinds.
    const double* l1 =
        Tip1 ? c1.tip_table + static_cast<std::size_t>(c1.codes[i]) * stride
             : c1.clv + i * stride;
    const double* l2 =
        Tip2 ? c2.tip_table + static_cast<std::size_t>(c2.codes[i]) * stride
             : c2.clv + i * stride;

    simd::Vec vmx = simd::zero();
    for (int c = 0; c < cats; ++c) {
      const double* l1c = l1 + static_cast<std::size_t>(c) * S;
      const double* l2c = l2 + static_cast<std::size_t>(c) * S;
      double* oc = o + static_cast<std::size_t>(c) * S;

      simd::Vec s1[B], s2[B];
      if constexpr (Tip1) {
        for (int b = 0; b < B; ++b) s1[b] = simd::load(l1c + b * W);
      } else {
        matvec_t<S>(p1t + static_cast<std::size_t>(c) * S * S, l1c, s1);
      }
      if constexpr (Tip2) {
        for (int b = 0; b < B; ++b) s2[b] = simd::load(l2c + b * W);
      } else {
        matvec_t<S>(p2t + static_cast<std::size_t>(c) * S * S, l2c, s2);
      }
      for (int b = 0; b < B; ++b) {
        const simd::Vec v = simd::mul(s1[b], s2[b]);
        simd::store(oc + b * W, v);
        vmx = simd::max(vmx, v);
      }
    }

    std::int32_t cnt = child_scale(c1, c2, i);
    const double mx = simd::reduce_max(vmx);
    if (mx < kScaleThreshold && mx > 0.0) {
      const simd::Vec f = simd::set1(kScaleFactor);
      for (std::size_t k = 0; k < stride; k += W)
        simd::store(o + k, simd::mul(simd::load(o + k), f));
      ++cnt;
    }
    out_scale[i] = cnt;
  }
}

/// Two-pattern newview core (S=4 path; see file comment). Patterns i and
/// i+step run in lockstep through the category loop with independent
/// accumulators; the scale decision stays strictly per-pattern.
///
/// FixedCats > 0 pins the category count at compile time so the CLV stride
/// becomes a constant (shift-and-add addressing, fully unrolled category
/// loop). The dispatcher routes the ubiquitous cats==4 case here; measured
/// ~15% per-pattern on the inner/inner DNA case versus the runtime-cats
/// instantiation. Arithmetic is identical — only address computation and
/// loop control change — so results stay bitwise equal.
template <int S, bool Tip1, bool Tip2, int FixedCats = 0>
void newview_core2(std::size_t begin, std::size_t end, std::size_t step,
                   int cats_arg, const ChildView& c1, const ChildView& c2,
                   const double* p1t, const double* p2t, double* out,
                   std::int32_t* out_scale) {
  constexpr int W = simd::kLanes;
  constexpr int B = kBlocks<S>;
  const int cats = FixedCats > 0 ? FixedCats : cats_arg;
  const std::size_t stride = static_cast<std::size_t>(cats) * S;
  std::size_t i = begin;
  for (; i < end && i + step < end; i += 2 * step) {
    const std::size_t i1 = i + step;
    double* o0 = out + i * stride;
    double* o1 = out + i1 * stride;
    const double* l1a =
        Tip1 ? c1.tip_table + static_cast<std::size_t>(c1.codes[i]) * stride
             : c1.clv + i * stride;
    const double* l1b =
        Tip1 ? c1.tip_table + static_cast<std::size_t>(c1.codes[i1]) * stride
             : c1.clv + i1 * stride;
    const double* l2a =
        Tip2 ? c2.tip_table + static_cast<std::size_t>(c2.codes[i]) * stride
             : c2.clv + i * stride;
    const double* l2b =
        Tip2 ? c2.tip_table + static_cast<std::size_t>(c2.codes[i1]) * stride
             : c2.clv + i1 * stride;

    simd::Vec vmx0 = simd::zero(), vmx1 = simd::zero();
    for (int c = 0; c < cats; ++c) {
      const std::size_t coff = static_cast<std::size_t>(c) * S;
      simd::Vec s1a[B], s1b[B], s2a[B], s2b[B];
      if constexpr (Tip1) {
        for (int b = 0; b < B; ++b) {
          s1a[b] = simd::load(l1a + coff + b * W);
          s1b[b] = simd::load(l1b + coff + b * W);
        }
      } else {
        matvec_t2<S>(p1t + coff * S, l1a + coff, l1b + coff, s1a, s1b);
      }
      if constexpr (Tip2) {
        for (int b = 0; b < B; ++b) {
          s2a[b] = simd::load(l2a + coff + b * W);
          s2b[b] = simd::load(l2b + coff + b * W);
        }
      } else {
        matvec_t2<S>(p2t + coff * S, l2a + coff, l2b + coff, s2a, s2b);
      }
      for (int b = 0; b < B; ++b) {
        const simd::Vec v0 = simd::mul(s1a[b], s2a[b]);
        const simd::Vec v1 = simd::mul(s1b[b], s2b[b]);
        simd::store(o0 + coff + b * W, v0);
        simd::store(o1 + coff + b * W, v1);
        vmx0 = simd::max(vmx0, v0);
        vmx1 = simd::max(vmx1, v1);
      }
    }

    std::int32_t cnt0 = child_scale(c1, c2, i);
    const double mx0 = simd::reduce_max(vmx0);
    if (mx0 < kScaleThreshold && mx0 > 0.0) {
      const simd::Vec f = simd::set1(kScaleFactor);
      for (std::size_t k = 0; k < stride; k += W)
        simd::store(o0 + k, simd::mul(simd::load(o0 + k), f));
      ++cnt0;
    }
    out_scale[i] = cnt0;

    std::int32_t cnt1 = child_scale(c1, c2, i1);
    const double mx1 = simd::reduce_max(vmx1);
    if (mx1 < kScaleThreshold && mx1 > 0.0) {
      const simd::Vec f = simd::set1(kScaleFactor);
      for (std::size_t k = 0; k < stride; k += W)
        simd::store(o1 + k, simd::mul(simd::load(o1 + k), f));
      ++cnt1;
    }
    out_scale[i1] = cnt1;
  }
  if (i < end)  // odd trailing pattern
    newview_core<S, Tip1, Tip2>(i, end, step, cats, c1, c2, p1t, p2t, out,
                                out_scale);
}

// NOTE on cache blocking (measured, see src/core/kernels/README.md): a
// pattern-SoA tiled variant of the inner/inner DNA case — category loop
// hoisted outside an L1-sized tile of 32 patterns, 4x4 transposes turning
// lanes into patterns — was implemented and benchmarked against
// newview_core2 at -O3 with the backend TU's exact flags. core2 won at
// every working-set size (12.6 vs 13.3 ns/pattern cache-resident, 17.1 vs
// 20.6 streaming): the pattern-major CLV layout already makes newview a
// single sequential pass that touches each byte exactly once, so there is
// no temporal reuse for a tile to exploit, and the three transposes per
// quad are pure overhead on top of FMA chains the OoO core already
// overlaps across the two patterns. The SoA variant was therefore removed;
// the two-pattern AoS core below is the fast path.

template <int S, bool Tip1, bool Tip2>
inline void newview_dispatch_core(std::size_t begin, std::size_t end,
                                  std::size_t step, int cats,
                                  const ChildView& c1, const ChildView& c2,
                                  const double* p1t, const double* p2t,
                                  double* out, std::int32_t* out_scale) {
  if constexpr (S == 4) {
    if (cats == 4)  // the common engine configuration: constant-fold stride
      newview_core2<S, Tip1, Tip2, 4>(begin, end, step, cats, c1, c2, p1t,
                                      p2t, out, out_scale);
    else
      newview_core2<S, Tip1, Tip2>(begin, end, step, cats, c1, c2, p1t, p2t,
                                   out, out_scale);
  } else {
    newview_core<S, Tip1, Tip2>(begin, end, step, cats, c1, c2, p1t, p2t, out,
                                out_scale);
  }
}

}  // namespace detail

/// Dispatch newview to the tip-case specialization. `p1`/`p2` are the
/// row-major matrices (generic-fallback path), `p1t`/`p2t` their transposes.
/// Tip children must carry a tip_table to take a specialized path; otherwise
/// the generic reference kernel runs.
template <int S>
void newview_spec(std::size_t begin, std::size_t end, std::size_t step,
                  int cats, const ChildView& c1, const ChildView& c2,
                  const double* p1, const double* p2, const double* p1t,
                  const double* p2t, double* out, std::int32_t* out_scale) {
  const bool t1 = c1.is_tip(), t2 = c2.is_tip();
  if ((t1 && c1.tip_table == nullptr) || (t2 && c2.tip_table == nullptr)) {
    newview_slice<S>(begin, end, step, cats, c1, c2, p1, p2, out, out_scale);
    return;
  }
  if (t1 && t2)
    detail::newview_dispatch_core<S, true, true>(begin, end, step, cats, c1,
                                                 c2, p1t, p2t, out, out_scale);
  else if (t1)
    detail::newview_dispatch_core<S, true, false>(begin, end, step, cats, c1,
                                                  c2, p1t, p2t, out,
                                                  out_scale);
  else if (t2)
    detail::newview_dispatch_core<S, false, true>(begin, end, step, cats, c1,
                                                  c2, p1t, p2t, out,
                                                  out_scale);
  else
    detail::newview_dispatch_core<S, false, false>(begin, end, step, cats, c1,
                                                   c2, p1t, p2t, out,
                                                   out_scale);
}

PLK_SIMD_NS_END
}  // namespace plk::kernel

#endif  // !PLK_SIMD_AVX512
