// Specialized SIMD newview kernels.
//
// Three tip-case specializations (tip/tip, tip/inner, inner/inner) selected
// at dispatch time, all vectorized over the state dimension:
//
//   * An inner child costs one transposed matrix-vector product per category
//     (column-broadcast FMAs, unit-stride loads — see common.hpp).
//   * A tip child costs a single table-row load: its whole P x indicator
//     product was precomputed into a tip lookup table (tip_table.hpp) when
//     the transition matrix was last updated. In the tip/tip case the inner
//     loop is just two loads, a multiply, and a max.
//
// The transition matrices arrive *transposed* ([cat][j][a], see
// kernel::transpose_pmats); the row-major originals are also taken so the
// dispatcher can fall back to the generic reference kernel when a tip child
// has no lookup table.
#pragma once

#include "core/kernels/common.hpp"
#include "core/kernels/generic.hpp"

namespace plk::kernel {

namespace detail {

template <int S, bool Tip1, bool Tip2>
void newview_core(std::size_t begin, std::size_t end, std::size_t step,
                  int cats, const ChildView& c1, const ChildView& c2,
                  const double* p1t, const double* p2t, double* out,
                  std::int32_t* out_scale) {
  constexpr int W = simd::kLanes;
  constexpr int B = kBlocks<S>;
  const std::size_t stride = static_cast<std::size_t>(cats) * S;
  for (std::size_t i = begin; i < end; i += step) {
    double* o = out + i * stride;
    // Tip tables share the CLV's [.][cat][state] layout, so the per-category
    // addressing below is identical for both child kinds.
    const double* l1 =
        Tip1 ? c1.tip_table + static_cast<std::size_t>(c1.codes[i]) * stride
             : c1.clv + i * stride;
    const double* l2 =
        Tip2 ? c2.tip_table + static_cast<std::size_t>(c2.codes[i]) * stride
             : c2.clv + i * stride;

    simd::Vec vmx = simd::zero();
    for (int c = 0; c < cats; ++c) {
      const double* l1c = l1 + static_cast<std::size_t>(c) * S;
      const double* l2c = l2 + static_cast<std::size_t>(c) * S;
      double* oc = o + static_cast<std::size_t>(c) * S;

      simd::Vec s1[B], s2[B];
      if constexpr (Tip1) {
        for (int b = 0; b < B; ++b) s1[b] = simd::load(l1c + b * W);
      } else {
        matvec_t<S>(p1t + static_cast<std::size_t>(c) * S * S, l1c, s1);
      }
      if constexpr (Tip2) {
        for (int b = 0; b < B; ++b) s2[b] = simd::load(l2c + b * W);
      } else {
        matvec_t<S>(p2t + static_cast<std::size_t>(c) * S * S, l2c, s2);
      }
      for (int b = 0; b < B; ++b) {
        const simd::Vec v = simd::mul(s1[b], s2[b]);
        simd::store(oc + b * W, v);
        vmx = simd::max(vmx, v);
      }
    }

    std::int32_t cnt = child_scale(c1, c2, i);
    const double mx = simd::reduce_max(vmx);
    if (mx < kScaleThreshold && mx > 0.0) {
      const simd::Vec f = simd::set1(kScaleFactor);
      for (std::size_t k = 0; k < stride; k += W)
        simd::store(o + k, simd::mul(simd::load(o + k), f));
      ++cnt;
    }
    out_scale[i] = cnt;
  }
}

}  // namespace detail

/// Dispatch newview to the tip-case specialization. `p1`/`p2` are the
/// row-major matrices (generic-fallback path), `p1t`/`p2t` their transposes.
/// Tip children must carry a tip_table to take a specialized path; otherwise
/// the generic reference kernel runs.
template <int S>
void newview_spec(std::size_t begin, std::size_t end, std::size_t step,
                  int cats, const ChildView& c1, const ChildView& c2,
                  const double* p1, const double* p2, const double* p1t,
                  const double* p2t, double* out, std::int32_t* out_scale) {
  const bool t1 = c1.is_tip(), t2 = c2.is_tip();
  if ((t1 && c1.tip_table == nullptr) || (t2 && c2.tip_table == nullptr)) {
    newview_slice<S>(begin, end, step, cats, c1, c2, p1, p2, out, out_scale);
    return;
  }
  if (t1 && t2)
    detail::newview_core<S, true, true>(begin, end, step, cats, c1, c2, p1t,
                                        p2t, out, out_scale);
  else if (t1)
    detail::newview_core<S, true, false>(begin, end, step, cats, c1, c2, p1t,
                                         p2t, out, out_scale);
  else if (t2)
    detail::newview_core<S, false, true>(begin, end, step, cats, c1, c2, p1t,
                                         p2t, out, out_scale);
  else
    detail::newview_core<S, false, false>(begin, end, step, cats, c1, c2, p1t,
                                          p2t, out, out_scale);
}

}  // namespace plk::kernel
