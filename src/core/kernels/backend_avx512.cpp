// Runtime-dispatch backend TU: AVX-512 (dedicated kernels, avx512.hpp).
//
// CMake compiles this file with -mavx512f -mavx512dq on x86 GNU/Clang, so
// the table always EXISTS in an x86 binary regardless of the build host; the
// dispatcher only hands it out when CPUID reports avx512f+avx512dq, and the
// CI matrix leans on exactly that: compile always, runtime-skip on runners
// without the instruction set. Compiles to an empty table when AVX-512
// codegen is unavailable or under a global PLK_SIMD_FORCE_SCALAR build.
#if !defined(PLK_SIMD_FORCE_SCALAR) && defined(__AVX512F__)

#define PLK_SIMD_FORCE_AVX512 1
#include "core/kernels/backend_impl.hpp"

namespace plk::kernel {

const KernelTable* backend_table_avx512() {
  static const KernelTable t = make_backend_table();
  return &t;
}

}  // namespace plk::kernel

#else

#include "core/kernels/dispatch.hpp"

namespace plk::kernel {

const KernelTable* backend_table_avx512() { return nullptr; }

}  // namespace plk::kernel

#endif
