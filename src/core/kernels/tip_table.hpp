// Precomputed tip lookup tables.
//
// A tip child in the generic kernels costs an S-wide dot product per state
// per category per pattern: s[a] = sum_j P_c[a][j] * ind[code][j]. But the
// indicator catalog is tiny (<= 16 distinct masks for DNA, and far fewer
// codes than patterns in practice), so the specialized kernels precompute
//
//     table[code][cat][a] = sum_j P_c[a][j] * ind[code][j]
//
// once per transition-matrix update and turn the tip child's whole
// contribution into a single table-row load in the inner loop. The same
// trick applies to the Newton-Raphson sumtable with the (category-free)
// symmetric transform:
//
//     sym_table[code][k] = sum_j sym[k][j] * ind[code][j]
//
// The Engine owns the cached tables (one per tip-adjacent edge and
// partition), keyed on the partition's model epoch and the edge's branch
// length, and rebuilds them lazily while assembling a command — see
// Engine::tip_table_for in core/engine.cpp.
#pragma once

#include <cstddef>

namespace plk::kernel {

/// Build a newview/evaluate tip table from per-category transition matrices
/// `p` ([cat][i][j], row-major) and the 0/1 indicator catalog
/// ([code][state], `ncodes` rows). `out` must hold ncodes * cats * S doubles.
template <int S>
void build_tip_table(const double* p, int cats, const double* indicators,
                     std::size_t ncodes, double* out) {
  for (std::size_t code = 0; code < ncodes; ++code) {
    const double* ind = indicators + code * S;
    for (int c = 0; c < cats; ++c) {
      const double* pc = p + static_cast<std::size_t>(c) * S * S;
      double* o = out + (code * static_cast<std::size_t>(cats) +
                         static_cast<std::size_t>(c)) *
                            S;
      for (int a = 0; a < S; ++a) {
        double s = 0.0;
        const double* row = pc + a * S;
        for (int j = 0; j < S; ++j) s += row[j] * ind[j];
        o[a] = s;
      }
    }
  }
}

/// Build a sumtable tip table from the symmetric transform `sym` (S x S,
/// row k = sqrt(pi_i) V_ik). `out` must hold ncodes * S doubles.
template <int S>
void build_sym_tip_table(const double* sym, const double* indicators,
                         std::size_t ncodes, double* out) {
  for (std::size_t code = 0; code < ncodes; ++code) {
    const double* ind = indicators + code * S;
    double* o = out + code * S;
    for (int k = 0; k < S; ++k) {
      double s = 0.0;
      const double* row = sym + k * S;
      for (int j = 0; j < S; ++j) s += row[j] * ind[j];
      o[k] = s;
    }
  }
}

/// Transpose per-category transition matrices from [cat][i][j] to
/// [cat][j][i] — the layout the SIMD kernels consume (so a matrix-vector
/// product becomes column-broadcast FMAs with unit-stride loads).
/// `out` must hold cats * S * S doubles.
template <int S>
void transpose_pmats(const double* p, int cats, double* out) {
  for (int c = 0; c < cats; ++c) {
    const double* pc = p + static_cast<std::size_t>(c) * S * S;
    double* oc = out + static_cast<std::size_t>(c) * S * S;
    for (int i = 0; i < S; ++i)
      for (int j = 0; j < S; ++j) oc[j * S + i] = pc[i * S + j];
  }
}

}  // namespace plk::kernel
