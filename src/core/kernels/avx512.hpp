// Dedicated AVX-512 kernels (8 double lanes).
//
// Neither supported state count is a multiple of 8, so the width-agnostic
// templates in newview.hpp / evaluate.hpp / derivatives.hpp do not apply at
// this width. Instead:
//
//   S=4 (DNA)      TWO PATTERNS PER VECTOR: one zmm holds the 4-state blocks
//                  of patterns (i, i+step) in its 256-bit halves. A
//                  transposed mat-vec is then four broadcast-FMAs where the
//                  broadcast replicates x[j] *within each half*
//                  (_mm512_permutex_pd) against the matrix column duplicated
//                  into both halves (_mm512_broadcast_f64x4) — one
//                  instruction stream serves two patterns. newview processes
//                  two pattern-pairs (four patterns) per iteration so four
//                  independent FMA chains cover the latency. Per-pattern
//                  site values / scale decisions come from per-half
//                  reductions, so the evaluate/nr left-folds stay in span
//                  order. Because spans may be cyclic (step > 1), the halves
//                  are assembled with two 256-bit loads rather than one
//                  512-bit load — pattern pairs need not be contiguous.
//
//   S=20 (protein) PAD TO 24: the state vector is two full 8-lane blocks
//                  plus a 4-lane tail accessed through lane mask 0b1111
//                  (simd::maskz_load / mask_store). Masked tail loads
//                  zero-fill the upper lanes, which are additive/multiplic-
//                  ative dead weight through the whole pipeline, and masked
//                  tail stores never touch the next category's data or read
//                  or write past a buffer's end.
//
// Trailing patterns that do not fill a tile (at most 3 for DNA newview, 1
// elsewhere) fall through to the generic reference slices — correct by
// definition and off the hot path.
//
// This header is only compiled under PLK_SIMD_FORCE_AVX512 (the runtime-
// dispatch backend TU, core/kernels/backend_avx512.cpp); everything lives in
// the backend's inline namespace like the other specialized kernels.
#pragma once

#include "core/kernels/generic.hpp"
#include "util/simd.hpp"

#if defined(PLK_SIMD_AVX512)

namespace plk::kernel {
PLK_SIMD_NS_BEGIN

namespace detail {

/// Lane mask selecting the 4-double tail block of a 20-state vector.
inline constexpr unsigned char kTail20 = 0x0F;

/// Pack two patterns' 4-double state blocks into one zmm: [a0..a3 | b0..b3].
inline __m512d load2x4(const double* a, const double* b) {
  return _mm512_insertf64x4(_mm512_castpd256_pd512(_mm256_loadu_pd(a)),
                            _mm256_loadu_pd(b), 1);
}

inline void store2x4(double* a, double* b, __m512d v) {
  _mm256_storeu_pd(a, _mm512_castpd512_pd256(v));
  _mm256_storeu_pd(b, _mm512_extractf64x4_pd(v, 1));
}

/// Duplicate one 4-double matrix column into both 256-bit halves.
inline __m512d bcast_col4(const double* col) {
  return _mm512_broadcast_f64x4(_mm256_loadu_pd(col));
}

/// Replicate element j within each 256-bit half: [a_j x4 | b_j x4].
template <int J>
inline __m512d bcast_elem4(__m512d x) {
  return _mm512_permutex_pd(x, J * 0x55);
}

inline double rsum256(__m256d v) {
  const __m128d lo = _mm256_castpd256_pd128(v);
  const __m128d hi = _mm256_extractf128_pd(v, 1);
  const __m128d s = _mm_add_pd(lo, hi);
  return _mm_cvtsd_f64(_mm_add_sd(s, _mm_unpackhi_pd(s, s)));
}

inline double rmax256(__m256d v) {
  const __m128d lo = _mm256_castpd256_pd128(v);
  const __m128d hi = _mm256_extractf128_pd(v, 1);
  const __m128d m = _mm_max_pd(lo, hi);
  return _mm_cvtsd_f64(_mm_max_sd(m, _mm_unpackhi_pd(m, m)));
}

inline double rsum_lo(__m512d v) { return rsum256(_mm512_castpd512_pd256(v)); }
inline double rsum_hi(__m512d v) {
  return rsum256(_mm512_extractf64x4_pd(v, 1));
}
inline double rmax_lo(__m512d v) { return rmax256(_mm512_castpd512_pd256(v)); }
inline double rmax_hi(__m512d v) {
  return rmax256(_mm512_extractf64x4_pd(v, 1));
}

/// Two-pattern transposed mat-vec for S=4: s = P^T-style accumulation with
/// x packed as [x_p0 | x_p1] and each column duplicated into both halves.
/// Ascending-j order like matvec_t.
inline __m512d matvec2x4(const double* pt, __m512d x) {
  __m512d acc = _mm512_mul_pd(bcast_elem4<0>(x), bcast_col4(pt));
  acc = _mm512_fmadd_pd(bcast_elem4<1>(x), bcast_col4(pt + 4), acc);
  acc = _mm512_fmadd_pd(bcast_elem4<2>(x), bcast_col4(pt + 8), acc);
  acc = _mm512_fmadd_pd(bcast_elem4<3>(x), bcast_col4(pt + 12), acc);
  return acc;
}

/// Multiply one pattern's whole CLV block by the scale factor (stride is
/// always a multiple of 4, not necessarily of 8).
inline void rescale_block(double* o, std::size_t stride) {
  const __m256d f = _mm256_set1_pd(kScaleFactor);
  for (std::size_t k = 0; k < stride; k += 4)
    _mm256_storeu_pd(o + k, _mm256_mul_pd(_mm256_loadu_pd(o + k), f));
}

/// 20 doubles as two full 8-lane blocks plus a masked 4-lane tail.
inline void load20(const double* p, simd::Vec (&v)[3]) {
  v[0] = simd::load(p);
  v[1] = simd::load(p + 8);
  v[2] = simd::maskz_load(kTail20, p + 16);
}

inline void store20(double* p, const simd::Vec (&v)[3]) {
  simd::store(p, v[0]);
  simd::store(p + 8, v[1]);
  simd::mask_store(p + 16, kTail20, v[2]);
}

/// Transposed mat-vec for S=20 over padded blocks, ascending-j order.
inline void matvec20(const double* pt, const double* x, simd::Vec (&acc)[3]) {
  acc[0] = simd::zero();
  acc[1] = simd::zero();
  acc[2] = simd::zero();
  for (int j = 0; j < 20; ++j) {
    const simd::Vec xj = simd::set1(x[j]);
    const double* col = pt + j * 20;
    acc[0] = simd::fma(xj, simd::load(col), acc[0]);
    acc[1] = simd::fma(xj, simd::load(col + 8), acc[1]);
    acc[2] = simd::fma(xj, simd::maskz_load(kTail20, col + 16), acc[2]);
  }
}

// ---------------------------------------------------------------------------
// S=4 cores
// ---------------------------------------------------------------------------

/// One pattern-pair's newview body: compute, store, and scale patterns i0/i1.
template <bool Tip1, bool Tip2>
inline void newview4_pair(std::size_t i0, std::size_t i1, int cats,
                          std::size_t stride, const ChildView& c1,
                          const ChildView& c2, const double* p1t,
                          const double* p2t, double* out,
                          std::int32_t* out_scale) {
  double* o0 = out + i0 * stride;
  double* o1 = out + i1 * stride;
  const double* l1a =
      Tip1 ? c1.tip_table + static_cast<std::size_t>(c1.codes[i0]) * stride
           : c1.clv + i0 * stride;
  const double* l1b =
      Tip1 ? c1.tip_table + static_cast<std::size_t>(c1.codes[i1]) * stride
           : c1.clv + i1 * stride;
  const double* l2a =
      Tip2 ? c2.tip_table + static_cast<std::size_t>(c2.codes[i0]) * stride
           : c2.clv + i0 * stride;
  const double* l2b =
      Tip2 ? c2.tip_table + static_cast<std::size_t>(c2.codes[i1]) * stride
           : c2.clv + i1 * stride;

  __m512d vmx = _mm512_setzero_pd();
  for (int c = 0; c < cats; ++c) {
    const std::size_t coff = static_cast<std::size_t>(c) * 4;
    __m512d s1, s2;
    if constexpr (Tip1)
      s1 = load2x4(l1a + coff, l1b + coff);
    else
      s1 = matvec2x4(p1t + coff * 4, load2x4(l1a + coff, l1b + coff));
    if constexpr (Tip2)
      s2 = load2x4(l2a + coff, l2b + coff);
    else
      s2 = matvec2x4(p2t + coff * 4, load2x4(l2a + coff, l2b + coff));
    const __m512d v = _mm512_mul_pd(s1, s2);
    store2x4(o0 + coff, o1 + coff, v);
    vmx = _mm512_max_pd(vmx, v);
  }

  std::int32_t cnt0 = child_scale(c1, c2, i0);
  const double mx0 = rmax_lo(vmx);
  if (mx0 < kScaleThreshold && mx0 > 0.0) {
    rescale_block(o0, stride);
    ++cnt0;
  }
  out_scale[i0] = cnt0;

  std::int32_t cnt1 = child_scale(c1, c2, i1);
  const double mx1 = rmax_hi(vmx);
  if (mx1 < kScaleThreshold && mx1 > 0.0) {
    rescale_block(o1, stride);
    ++cnt1;
  }
  out_scale[i1] = cnt1;
}

template <bool Tip1, bool Tip2>
void newview4_core(std::size_t begin, std::size_t end, std::size_t step,
                   int cats, const ChildView& c1, const ChildView& c2,
                   const double* p1, const double* p2, const double* p1t,
                   const double* p2t, double* out, std::int32_t* out_scale) {
  const std::size_t stride = static_cast<std::size_t>(cats) * 4;
  std::size_t i = begin;
  // Two pattern-pairs per iteration: four independent FMA chains.
  for (; i < end && i + 3 * step < end; i += 4 * step) {
    newview4_pair<Tip1, Tip2>(i, i + step, cats, stride, c1, c2, p1t, p2t,
                              out, out_scale);
    newview4_pair<Tip1, Tip2>(i + 2 * step, i + 3 * step, cats, stride, c1,
                              c2, p1t, p2t, out, out_scale);
  }
  if (i < end && i + step < end) {
    newview4_pair<Tip1, Tip2>(i, i + step, cats, stride, c1, c2, p1t, p2t,
                              out, out_scale);
    i += 2 * step;
  }
  if (i < end)
    newview_slice<4>(i, end, step, cats, c1, c2, p1, p2, out, out_scale);
}

/// Two-pattern site likelihoods for S=4 (lower half = i0, upper = i1).
/// `cw`: optional per-category mixture weights; null keeps the historic
/// unweighted accumulation sequence bit-for-bit.
template <bool TipU, bool TipV>
inline void eval4_pair(std::size_t i0, std::size_t i1, int cats,
                       std::size_t stride, const ChildView& cu,
                       const ChildView& cv, const double* pt, __m512d fr,
                       const double* cw, double* site0, double* site1) {
  const double* lu0 =
      TipU ? cu.indicators + static_cast<std::size_t>(cu.codes[i0]) * 4
           : cu.clv + i0 * stride;
  const double* lu1 =
      TipU ? cu.indicators + static_cast<std::size_t>(cu.codes[i1]) * 4
           : cu.clv + i1 * stride;
  const double* lv0 =
      TipV ? cv.tip_table + static_cast<std::size_t>(cv.codes[i0]) * stride
           : cv.clv + i0 * stride;
  const double* lv1 =
      TipV ? cv.tip_table + static_cast<std::size_t>(cv.codes[i1]) * stride
           : cv.clv + i1 * stride;
  __m512d acc = _mm512_setzero_pd();
  for (int c = 0; c < cats; ++c) {
    const std::size_t coff = static_cast<std::size_t>(c) * 4;
    const double* luc0 = TipU ? lu0 : lu0 + coff;
    const double* luc1 = TipU ? lu1 : lu1 + coff;
    __m512d inner;
    if constexpr (TipV)
      inner = load2x4(lv0 + coff, lv1 + coff);
    else
      inner = matvec2x4(pt + coff * 4, load2x4(lv0 + coff, lv1 + coff));
    const __m512d lu2 = load2x4(luc0, luc1);
    __m512d fl = _mm512_mul_pd(fr, lu2);
    if (cw) fl = _mm512_mul_pd(fl, _mm512_set1_pd(cw[c]));
    acc = _mm512_fmadd_pd(fl, inner, acc);
  }
  *site0 = rsum_lo(acc);
  *site1 = rsum_hi(acc);
}

template <bool TipU, bool TipV>
double evaluate4_core(std::size_t begin, std::size_t end, std::size_t step,
                      int cats, const ChildView& cu, const ChildView& cv,
                      const double* p, const double* pt, const double* freqs,
                      const double* weights, const RateView& rv) {
  const std::size_t stride = static_cast<std::size_t>(cats) * 4;
  const double inv_cats = 1.0 / static_cast<double>(cats);
  const __m512d fr = bcast_col4(freqs);
  double lnl = 0.0;
  std::size_t i = begin;
  if (rv.cat_w) {
    for (; i < end && i + step < end; i += 2 * step) {
      const std::size_t i1 = i + step;
      double s0, s1;
      eval4_pair<TipU, TipV>(i, i1, cats, stride, cu, cv, pt, fr, rv.cat_w,
                             &s0, &s1);
      lnl += weights[i] * site_lnl(s0, child_scale(cu, cv, i),
                                   rv.inv ? rv.inv[i] : 0.0);
      lnl += weights[i1] * site_lnl(s1, child_scale(cu, cv, i1),
                                    rv.inv ? rv.inv[i1] : 0.0);
    }
    if (i < end)
      lnl += evaluate_slice<4>(i, end, step, cats, cu, cv, p, freqs, weights,
                               rv);
    return lnl;
  }
  for (; i < end && i + step < end; i += 2 * step) {
    const std::size_t i1 = i + step;
    double s0, s1;
    eval4_pair<TipU, TipV>(i, i1, cats, stride, cu, cv, pt, fr, nullptr, &s0,
                           &s1);
    const double site0 = s0 * inv_cats;
    const double site1 = s1 * inv_cats;
    const double g0 = site0 > 1e-300 ? site0 : 1e-300;
    const double g1 = site1 > 1e-300 ? site1 : 1e-300;
    lnl += weights[i] *
           (std::log(g0) -
            static_cast<double>(child_scale(cu, cv, i)) * kLogScale);
    lnl += weights[i1] *
           (std::log(g1) -
            static_cast<double>(child_scale(cu, cv, i1)) * kLogScale);
  }
  if (i < end)
    lnl += evaluate_slice<4>(i, end, step, cats, cu, cv, p, freqs, weights);
  return lnl;
}

template <bool TipU, bool TipV>
void evaluate4_sites_core(std::size_t begin, std::size_t end,
                          std::size_t step, int cats, const ChildView& cu,
                          const ChildView& cv, const double* p,
                          const double* pt, const double* freqs, double* out,
                          const RateView& rv) {
  const std::size_t stride = static_cast<std::size_t>(cats) * 4;
  const double inv_cats = 1.0 / static_cast<double>(cats);
  const __m512d fr = bcast_col4(freqs);
  std::size_t i = begin;
  if (rv.cat_w) {
    for (; i < end && i + step < end; i += 2 * step) {
      const std::size_t i1 = i + step;
      double s0, s1;
      eval4_pair<TipU, TipV>(i, i1, cats, stride, cu, cv, pt, fr, rv.cat_w,
                             &s0, &s1);
      out[i] = site_lnl(s0, child_scale(cu, cv, i),
                        rv.inv ? rv.inv[i] : 0.0);
      out[i1] = site_lnl(s1, child_scale(cu, cv, i1),
                         rv.inv ? rv.inv[i1] : 0.0);
    }
    if (i < end)
      evaluate_sites_slice<4>(i, end, step, cats, cu, cv, p, freqs, out, rv);
    return;
  }
  for (; i < end && i + step < end; i += 2 * step) {
    const std::size_t i1 = i + step;
    double s0, s1;
    eval4_pair<TipU, TipV>(i, i1, cats, stride, cu, cv, pt, fr, nullptr, &s0,
                           &s1);
    const double site0 = s0 * inv_cats;
    const double site1 = s1 * inv_cats;
    const double g0 = site0 > 1e-300 ? site0 : 1e-300;
    const double g1 = site1 > 1e-300 ? site1 : 1e-300;
    out[i] = std::log(g0) -
             static_cast<double>(child_scale(cu, cv, i)) * kLogScale;
    out[i1] = std::log(g1) -
              static_cast<double>(child_scale(cu, cv, i1)) * kLogScale;
  }
  if (i < end)
    evaluate_sites_slice<4>(i, end, step, cats, cu, cv, p, freqs, out);
}

template <bool TipU, bool TipV>
void sumtable4_core(std::size_t begin, std::size_t end, std::size_t step,
                    int cats, const ChildView& cu, const ChildView& cv,
                    const double* sym, const double* symt, double* out) {
  const std::size_t stride = static_cast<std::size_t>(cats) * 4;
  std::size_t i = begin;
  for (; i < end && i + step < end; i += 2 * step) {
    const std::size_t i1 = i + step;
    const double* lu0 =
        TipU ? cu.tip_table + static_cast<std::size_t>(cu.codes[i]) * 4
             : cu.clv + i * stride;
    const double* lu1 =
        TipU ? cu.tip_table + static_cast<std::size_t>(cu.codes[i1]) * 4
             : cu.clv + i1 * stride;
    const double* lv0 =
        TipV ? cv.tip_table + static_cast<std::size_t>(cv.codes[i]) * 4
             : cv.clv + i * stride;
    const double* lv1 =
        TipV ? cv.tip_table + static_cast<std::size_t>(cv.codes[i1]) * 4
             : cv.clv + i1 * stride;
    double* o0 = out + i * stride;
    double* o1 = out + i1 * stride;

    // Tip-side coordinates are category-invariant: pack once per pair.
    __m512d xu, xv;
    if constexpr (TipU) xu = load2x4(lu0, lu1);
    if constexpr (TipV) xv = load2x4(lv0, lv1);

    for (int c = 0; c < cats; ++c) {
      const std::size_t coff = static_cast<std::size_t>(c) * 4;
      if constexpr (!TipU)
        xu = matvec2x4(symt, load2x4(lu0 + coff, lu1 + coff));
      if constexpr (!TipV)
        xv = matvec2x4(symt, load2x4(lv0 + coff, lv1 + coff));
      store2x4(o0 + coff, o1 + coff, _mm512_mul_pd(xu, xv));
    }
  }
  if (i < end) sumtable_slice<4>(i, end, step, cats, cu, cv, sym, out);
}

// ---------------------------------------------------------------------------
// S=20 cores
// ---------------------------------------------------------------------------

template <bool Tip1, bool Tip2>
void newview20_core(std::size_t begin, std::size_t end, std::size_t step,
                    int cats, const ChildView& c1, const ChildView& c2,
                    const double* p1t, const double* p2t, double* out,
                    std::int32_t* out_scale) {
  const std::size_t stride = static_cast<std::size_t>(cats) * 20;
  for (std::size_t i = begin; i < end; i += step) {
    double* o = out + i * stride;
    const double* l1 =
        Tip1 ? c1.tip_table + static_cast<std::size_t>(c1.codes[i]) * stride
             : c1.clv + i * stride;
    const double* l2 =
        Tip2 ? c2.tip_table + static_cast<std::size_t>(c2.codes[i]) * stride
             : c2.clv + i * stride;

    simd::Vec vmx = simd::zero();
    for (int c = 0; c < cats; ++c) {
      const std::size_t coff = static_cast<std::size_t>(c) * 20;
      simd::Vec s1[3], s2[3];
      if constexpr (Tip1)
        load20(l1 + coff, s1);
      else
        matvec20(p1t + coff * 20, l1 + coff, s1);
      if constexpr (Tip2)
        load20(l2 + coff, s2);
      else
        matvec20(p2t + coff * 20, l2 + coff, s2);
      simd::Vec v[3];
      for (int b = 0; b < 3; ++b) {
        v[b] = simd::mul(s1[b], s2[b]);
        vmx = simd::max(vmx, v[b]);
      }
      store20(o + coff, v);
    }

    std::int32_t cnt = child_scale(c1, c2, i);
    // Padded tail lanes are zero everywhere, so they never win the max.
    const double mx = simd::reduce_max(vmx);
    if (mx < kScaleThreshold && mx > 0.0) {
      rescale_block(o, stride);
      ++cnt;
    }
    out_scale[i] = cnt;
  }
}

template <bool TipU, bool TipV>
double evaluate20_core(std::size_t begin, std::size_t end, std::size_t step,
                       int cats, const ChildView& cu, const ChildView& cv,
                       const double* pt, const double* freqs,
                       const double* weights, const RateView& rv) {
  const std::size_t stride = static_cast<std::size_t>(cats) * 20;
  const double inv_cats = 1.0 / static_cast<double>(cats);
  simd::Vec fr[3];
  load20(freqs, fr);

  double lnl = 0.0;
  for (std::size_t i = begin; i < end; i += step) {
    const double* lu =
        TipU ? cu.indicators + static_cast<std::size_t>(cu.codes[i]) * 20
             : cu.clv + i * stride;
    const double* lv =
        TipV ? cv.tip_table + static_cast<std::size_t>(cv.codes[i]) * stride
             : cv.clv + i * stride;
    simd::Vec acc = simd::zero();
    for (int c = 0; c < cats; ++c) {
      const std::size_t coff = static_cast<std::size_t>(c) * 20;
      const double* luc = TipU ? lu : lu + coff;
      simd::Vec inner[3];
      if constexpr (TipV)
        load20(lv + coff, inner);
      else
        matvec20(pt + coff * 20, lv + coff, inner);
      simd::Vec lub[3];
      load20(luc, lub);
      if (rv.cat_w) {
        const simd::Vec wc = simd::set1(rv.cat_w[c]);
        for (int b = 0; b < 3; ++b)
          acc = simd::fma(simd::mul(simd::mul(fr[b], wc), lub[b]), inner[b],
                          acc);
      } else {
        for (int b = 0; b < 3; ++b)
          acc = simd::fma(simd::mul(fr[b], lub[b]), inner[b], acc);
      }
    }
    if (rv.cat_w) {
      lnl += weights[i] * site_lnl(simd::reduce_add(acc),
                                   child_scale(cu, cv, i),
                                   rv.inv ? rv.inv[i] : 0.0);
      continue;
    }
    const double site = simd::reduce_add(acc) * inv_cats;
    const std::int32_t scale = child_scale(cu, cv, i);
    const double guarded = site > 1e-300 ? site : 1e-300;
    lnl += weights[i] *
           (std::log(guarded) - static_cast<double>(scale) * kLogScale);
  }
  return lnl;
}

template <bool TipU, bool TipV>
void evaluate20_sites_core(std::size_t begin, std::size_t end,
                           std::size_t step, int cats, const ChildView& cu,
                           const ChildView& cv, const double* pt,
                           const double* freqs, double* out,
                           const RateView& rv) {
  const std::size_t stride = static_cast<std::size_t>(cats) * 20;
  const double inv_cats = 1.0 / static_cast<double>(cats);
  simd::Vec fr[3];
  load20(freqs, fr);

  for (std::size_t i = begin; i < end; i += step) {
    const double* lu =
        TipU ? cu.indicators + static_cast<std::size_t>(cu.codes[i]) * 20
             : cu.clv + i * stride;
    const double* lv =
        TipV ? cv.tip_table + static_cast<std::size_t>(cv.codes[i]) * stride
             : cv.clv + i * stride;
    simd::Vec acc = simd::zero();
    for (int c = 0; c < cats; ++c) {
      const std::size_t coff = static_cast<std::size_t>(c) * 20;
      const double* luc = TipU ? lu : lu + coff;
      simd::Vec inner[3];
      if constexpr (TipV)
        load20(lv + coff, inner);
      else
        matvec20(pt + coff * 20, lv + coff, inner);
      simd::Vec lub[3];
      load20(luc, lub);
      if (rv.cat_w) {
        const simd::Vec wc = simd::set1(rv.cat_w[c]);
        for (int b = 0; b < 3; ++b)
          acc = simd::fma(simd::mul(simd::mul(fr[b], wc), lub[b]), inner[b],
                          acc);
      } else {
        for (int b = 0; b < 3; ++b)
          acc = simd::fma(simd::mul(fr[b], lub[b]), inner[b], acc);
      }
    }
    if (rv.cat_w) {
      out[i] = site_lnl(simd::reduce_add(acc), child_scale(cu, cv, i),
                        rv.inv ? rv.inv[i] : 0.0);
      continue;
    }
    const double site = simd::reduce_add(acc) * inv_cats;
    const std::int32_t scale = child_scale(cu, cv, i);
    const double guarded = site > 1e-300 ? site : 1e-300;
    out[i] = std::log(guarded) - static_cast<double>(scale) * kLogScale;
  }
}

template <bool TipU, bool TipV>
void sumtable20_core(std::size_t begin, std::size_t end, std::size_t step,
                     int cats, const ChildView& cu, const ChildView& cv,
                     const double* symt, double* out) {
  const std::size_t stride = static_cast<std::size_t>(cats) * 20;
  for (std::size_t i = begin; i < end; i += step) {
    const double* lu =
        TipU ? cu.tip_table + static_cast<std::size_t>(cu.codes[i]) * 20
             : cu.clv + i * stride;
    const double* lv =
        TipV ? cv.tip_table + static_cast<std::size_t>(cv.codes[i]) * 20
             : cv.clv + i * stride;
    double* o = out + i * stride;

    simd::Vec xu[3], xv[3];
    if constexpr (TipU) load20(lu, xu);
    if constexpr (TipV) load20(lv, xv);

    for (int c = 0; c < cats; ++c) {
      const std::size_t coff = static_cast<std::size_t>(c) * 20;
      if constexpr (!TipU) matvec20(symt, lu + coff, xu);
      if constexpr (!TipV) matvec20(symt, lv + coff, xv);
      simd::Vec v[3];
      for (int b = 0; b < 3; ++b) v[b] = simd::mul(xu[b], xv[b]);
      store20(o + coff, v);
    }
  }
}

}  // namespace detail

// ---------------------------------------------------------------------------
// Dispatchers: same names/signatures/fallback rules as the width-agnostic
// headers, so the backend TU's kernel table is populated identically.
// ---------------------------------------------------------------------------

template <int S>
void newview_spec(std::size_t begin, std::size_t end, std::size_t step,
                  int cats, const ChildView& c1, const ChildView& c2,
                  const double* p1, const double* p2, const double* p1t,
                  const double* p2t, double* out, std::int32_t* out_scale) {
  static_assert(S == 4 || S == 20, "AVX-512 kernels cover S=4 and S=20");
  const bool t1 = c1.is_tip(), t2 = c2.is_tip();
  if ((t1 && c1.tip_table == nullptr) || (t2 && c2.tip_table == nullptr)) {
    newview_slice<S>(begin, end, step, cats, c1, c2, p1, p2, out, out_scale);
    return;
  }
  if constexpr (S == 4) {
    if (t1 && t2)
      detail::newview4_core<true, true>(begin, end, step, cats, c1, c2, p1,
                                        p2, p1t, p2t, out, out_scale);
    else if (t1)
      detail::newview4_core<true, false>(begin, end, step, cats, c1, c2, p1,
                                         p2, p1t, p2t, out, out_scale);
    else if (t2)
      detail::newview4_core<false, true>(begin, end, step, cats, c1, c2, p1,
                                         p2, p1t, p2t, out, out_scale);
    else
      detail::newview4_core<false, false>(begin, end, step, cats, c1, c2, p1,
                                          p2, p1t, p2t, out, out_scale);
  } else {
    if (t1 && t2)
      detail::newview20_core<true, true>(begin, end, step, cats, c1, c2, p1t,
                                         p2t, out, out_scale);
    else if (t1)
      detail::newview20_core<true, false>(begin, end, step, cats, c1, c2, p1t,
                                          p2t, out, out_scale);
    else if (t2)
      detail::newview20_core<false, true>(begin, end, step, cats, c1, c2, p1t,
                                          p2t, out, out_scale);
    else
      detail::newview20_core<false, false>(begin, end, step, cats, c1, c2,
                                           p1t, p2t, out, out_scale);
  }
}

template <int S>
double evaluate_spec(std::size_t begin, std::size_t end, std::size_t step,
                     int cats, const ChildView& cu, const ChildView& cv,
                     const double* p, const double* pt, const double* freqs,
                     const double* weights, const RateView& rv = {}) {
  static_assert(S == 4 || S == 20, "AVX-512 kernels cover S=4 and S=20");
  const bool tu = cu.is_tip(), tv = cv.is_tip();
  if (tv && cv.tip_table == nullptr)
    return evaluate_slice<S>(begin, end, step, cats, cu, cv, p, freqs,
                             weights, rv);
  if constexpr (S == 4) {
    if (tu && tv)
      return detail::evaluate4_core<true, true>(begin, end, step, cats, cu,
                                                cv, p, pt, freqs, weights,
                                                rv);
    if (tu)
      return detail::evaluate4_core<true, false>(begin, end, step, cats, cu,
                                                 cv, p, pt, freqs, weights,
                                                 rv);
    if (tv)
      return detail::evaluate4_core<false, true>(begin, end, step, cats, cu,
                                                 cv, p, pt, freqs, weights,
                                                 rv);
    return detail::evaluate4_core<false, false>(begin, end, step, cats, cu,
                                                cv, p, pt, freqs, weights,
                                                rv);
  } else {
    if (tu && tv)
      return detail::evaluate20_core<true, true>(begin, end, step, cats, cu,
                                                 cv, pt, freqs, weights, rv);
    if (tu)
      return detail::evaluate20_core<true, false>(begin, end, step, cats, cu,
                                                  cv, pt, freqs, weights, rv);
    if (tv)
      return detail::evaluate20_core<false, true>(begin, end, step, cats, cu,
                                                  cv, pt, freqs, weights, rv);
    return detail::evaluate20_core<false, false>(begin, end, step, cats, cu,
                                                 cv, pt, freqs, weights, rv);
  }
}

template <int S>
void evaluate_sites_spec(std::size_t begin, std::size_t end, std::size_t step,
                         int cats, const ChildView& cu, const ChildView& cv,
                         const double* p, const double* pt,
                         const double* freqs, double* out,
                         const RateView& rv = {}) {
  static_assert(S == 4 || S == 20, "AVX-512 kernels cover S=4 and S=20");
  const bool tu = cu.is_tip(), tv = cv.is_tip();
  if (tv && cv.tip_table == nullptr) {
    evaluate_sites_slice<S>(begin, end, step, cats, cu, cv, p, freqs, out,
                            rv);
    return;
  }
  if constexpr (S == 4) {
    if (tu && tv)
      detail::evaluate4_sites_core<true, true>(begin, end, step, cats, cu, cv,
                                               p, pt, freqs, out, rv);
    else if (tu)
      detail::evaluate4_sites_core<true, false>(begin, end, step, cats, cu,
                                                cv, p, pt, freqs, out, rv);
    else if (tv)
      detail::evaluate4_sites_core<false, true>(begin, end, step, cats, cu,
                                                cv, p, pt, freqs, out, rv);
    else
      detail::evaluate4_sites_core<false, false>(begin, end, step, cats, cu,
                                                 cv, p, pt, freqs, out, rv);
  } else {
    if (tu && tv)
      detail::evaluate20_sites_core<true, true>(begin, end, step, cats, cu,
                                                cv, pt, freqs, out, rv);
    else if (tu)
      detail::evaluate20_sites_core<true, false>(begin, end, step, cats, cu,
                                                 cv, pt, freqs, out, rv);
    else if (tv)
      detail::evaluate20_sites_core<false, true>(begin, end, step, cats, cu,
                                                 cv, pt, freqs, out, rv);
    else
      detail::evaluate20_sites_core<false, false>(begin, end, step, cats, cu,
                                                  cv, pt, freqs, out, rv);
  }
}

template <int S>
void sumtable_spec(std::size_t begin, std::size_t end, std::size_t step,
                   int cats, const ChildView& cu, const ChildView& cv,
                   const double* sym, const double* symt, double* out) {
  static_assert(S == 4 || S == 20, "AVX-512 kernels cover S=4 and S=20");
  const bool tu = cu.is_tip(), tv = cv.is_tip();
  if ((tu && cu.tip_table == nullptr) || (tv && cv.tip_table == nullptr)) {
    sumtable_slice<S>(begin, end, step, cats, cu, cv, sym, out);
    return;
  }
  if constexpr (S == 4) {
    if (tu && tv)
      detail::sumtable4_core<true, true>(begin, end, step, cats, cu, cv, sym,
                                         symt, out);
    else if (tu)
      detail::sumtable4_core<true, false>(begin, end, step, cats, cu, cv, sym,
                                          symt, out);
    else if (tv)
      detail::sumtable4_core<false, true>(begin, end, step, cats, cu, cv, sym,
                                          symt, out);
    else
      detail::sumtable4_core<false, false>(begin, end, step, cats, cu, cv,
                                           sym, symt, out);
  } else {
    if (tu && tv)
      detail::sumtable20_core<true, true>(begin, end, step, cats, cu, cv,
                                          symt, out);
    else if (tu)
      detail::sumtable20_core<true, false>(begin, end, step, cats, cu, cv,
                                           symt, out);
    else if (tv)
      detail::sumtable20_core<false, true>(begin, end, step, cats, cu, cv,
                                           symt, out);
    else
      detail::sumtable20_core<false, false>(begin, end, step, cats, cu, cv,
                                            symt, out);
  }
}

/// AVX-512 Newton-Raphson derivative reduction (same contract as nr_slice).
/// DNA packs two patterns per vector (six independent accumulator chains per
/// pair, exp_lam/lam loads shared); protein streams padded 20->24 blocks.
template <int S>
void nr_spec(std::size_t begin, std::size_t end, std::size_t step, int cats,
             const double* sumtable, const double* exp_lam, const double* lam,
             const double* weights, double* out_d1, double* out_d2,
             const RateView& rv = {}) {
  static_assert(S == 4 || S == 20, "AVX-512 kernels cover S=4 and S=20");
  const std::size_t stride = static_cast<std::size_t>(cats) * S;
  double d1 = 0.0, d2 = 0.0;
  if constexpr (S == 4) {
    std::size_t i = begin;
    for (; i < end && i + step < end; i += 2 * step) {
      const std::size_t i1 = i + step;
      const double* st0 = sumtable + i * stride;
      const double* st1 = sumtable + i1 * stride;
      __m512d vf = _mm512_setzero_pd();
      __m512d vf1 = _mm512_setzero_pd();
      __m512d vf2 = _mm512_setzero_pd();
      for (int c = 0; c < cats; ++c) {
        const std::size_t coff = static_cast<std::size_t>(c) * 4;
        const __m512d e = detail::bcast_col4(exp_lam + coff);
        const __m512d l = detail::bcast_col4(lam + coff);
        const __m512d x =
            _mm512_mul_pd(detail::load2x4(st0 + coff, st1 + coff), e);
        const __m512d lx = _mm512_mul_pd(l, x);
        vf = _mm512_add_pd(vf, x);
        vf1 = _mm512_add_pd(vf1, lx);
        vf2 = _mm512_fmadd_pd(l, lx, vf2);
      }
      const double fa = detail::rsum_lo(vf);
      const double fb = detail::rsum_hi(vf);
      const double f1a = detail::rsum_lo(vf1);
      const double f1b = detail::rsum_hi(vf1);
      const double f2a = detail::rsum_lo(vf2);
      const double f2b = detail::rsum_hi(vf2);
      nr_fold(fa, f1a, f2a, weights[i], rv.inv ? rv.inv[i] : 0.0,
              rv.scale ? rv.scale[i] : 0, d1, d2);
      nr_fold(fb, f1b, f2b, weights[i1], rv.inv ? rv.inv[i1] : 0.0,
              rv.scale ? rv.scale[i1] : 0, d1, d2);
    }
    if (i < end) {
      double td1 = 0.0, td2 = 0.0;
      nr_slice<4>(i, end, step, cats, sumtable, exp_lam, lam, weights, &td1,
                  &td2, rv);
      d1 += td1;
      d2 += td2;
    }
  } else {
    for (std::size_t i = begin; i < end; i += step) {
      const double* st = sumtable + i * stride;
      simd::Vec vf = simd::zero(), vf1 = simd::zero(), vf2 = simd::zero();
      for (int c = 0; c < cats; ++c) {
        const std::size_t coff = static_cast<std::size_t>(c) * 20;
        const double* stc = st + coff;
        const double* ec = exp_lam + coff;
        const double* lc = lam + coff;
        for (int b = 0; b < 3; ++b) {
          const simd::Vec sv =
              b < 2 ? simd::load(stc + b * 8)
                    : simd::maskz_load(detail::kTail20, stc + 16);
          const simd::Vec e = b < 2
                                  ? simd::load(ec + b * 8)
                                  : simd::maskz_load(detail::kTail20, ec + 16);
          const simd::Vec l = b < 2
                                  ? simd::load(lc + b * 8)
                                  : simd::maskz_load(detail::kTail20, lc + 16);
          const simd::Vec x = simd::mul(sv, e);
          const simd::Vec lx = simd::mul(l, x);
          vf = simd::add(vf, x);
          vf1 = simd::add(vf1, lx);
          vf2 = simd::fma(l, lx, vf2);
        }
      }
      const double f = simd::reduce_add(vf);
      const double f1 = simd::reduce_add(vf1);
      const double f2 = simd::reduce_add(vf2);
      nr_fold(f, f1, f2, weights[i], rv.inv ? rv.inv[i] : 0.0,
              rv.scale ? rv.scale[i] : 0, d1, d2);
    }
  }
  *out_d1 = d1;
  *out_d2 = d2;
}

PLK_SIMD_NS_END
}  // namespace plk::kernel

#endif  // PLK_SIMD_AVX512
