// Branch-length optimization: Newton-Raphson over all edges, under either
// parallelization strategy.
//
// Per edge the procedure is (i) relocate the virtual root to the edge
// (partial traversal), (ii) build the NR sumtable, (iii) iterate NR until
// convergence. With a per-partition branch-length estimate (unlinked mode):
//
//   * oldPAR: for each partition in turn, its own sumtable command and its
//     own NR iteration commands — sync count ~ sum_p iters(p), and each
//     command gives a thread only len(p)/T patterns of work;
//   * newPAR: one sumtable command for all partitions, then NR commands that
//     advance every non-converged partition at once (convergence mask) —
//     sync count ~ max_p iters(p), each command spanning m'/T patterns.
//
// In linked (joint) mode both strategies collapse to the same schedule
// (derivatives are summed over partitions), which is why the paper measures
// only ~5 % difference there.
#pragma once

#include "core/engine.hpp"
#include "core/strategy.hpp"

namespace plk {

/// Tuning knobs for branch-length optimization.
struct BranchOptOptions {
  int max_nr_iterations = 32;   ///< per branch (per partition)
  double length_tolerance = 1e-6;
  int smoothing_passes = 2;     ///< full sweeps over all edges
};

/// Optimize every branch length in `engine` (all partitions).
/// Returns the log-likelihood evaluated after the final pass.
double optimize_branch_lengths(Engine& engine, Strategy strategy,
                               const BranchOptOptions& opts = {});

/// Optimize a single edge's length(s) under the given strategy. The engine's
/// virtual root is relocated to `edge`. Exposed separately because the lazy
/// SPR search optimizes only the three edges around an insertion point.
void optimize_edge(Engine& engine, EdgeId edge, Strategy strategy,
                   const BranchOptOptions& opts = {});

/// Batched lockstep branch-length optimization across many contexts of one
/// shared core (bootstrap replicates, multi-start candidates): all contexts
/// advance edge-by-edge together, and every step — root relocation, sumtable
/// build, each Newton-Raphson iteration — is ONE parallel region for the
/// whole batch instead of one per context. Converged contexts (and, in
/// unlinked mode, converged partitions) drop out of the batch exactly as
/// newPAR's convergence mask drops partitions.
///
/// Per context the arithmetic is identical to optimize_branch_lengths()
/// under Strategy::kNewPar (or the linked schedule in linked mode) at the
/// same thread count, so per-context results match the sequential
/// one-engine-per-tree loop bit for bit.
///
/// Returns the final log-likelihood of each context.
std::vector<double> optimize_branch_lengths_batch(
    EngineCore& core, std::span<EvalContext* const> ctxs,
    const BranchOptOptions& opts = {});

}  // namespace plk
