// Branch-length optimization: Newton-Raphson over all edges, under either
// parallelization strategy.
//
// Per edge the procedure is (i) relocate the virtual root to the edge
// (partial traversal), (ii) build the NR sumtable, (iii) iterate NR until
// convergence. With a per-partition branch-length estimate (unlinked mode):
//
//   * oldPAR: for each partition in turn, its own sumtable command and its
//     own NR iteration commands — sync count ~ sum_p iters(p), and each
//     command gives a thread only len(p)/T patterns of work;
//   * newPAR: one sumtable command for all partitions, then NR commands that
//     advance every non-converged partition at once (convergence mask) —
//     sync count ~ max_p iters(p), each command spanning m'/T patterns.
//
// In linked (joint) mode both strategies collapse to the same schedule
// (derivatives are summed over partitions), which is why the paper measures
// only ~5 % difference there.
#pragma once

#include <span>
#include <vector>

#include "core/engine.hpp"
#include "core/strategy.hpp"
#include "optimize/newton.hpp"

namespace plk {

/// Tuning knobs for branch-length optimization.
struct BranchOptOptions {
  int max_nr_iterations = 32;   ///< per branch (per partition)
  double length_tolerance = 1e-6;
  int smoothing_passes = 2;     ///< full sweeps over all edges
};

/// The per-context Newton-Raphson stepping state for ONE edge, shared by
/// every optimizer in this module (the sequential optimize_edge variants,
/// the lockstep batch optimizers, and — through optimize_edge_batch — the
/// batched SPR candidate scorer). It owns the NewtonBranch instances, the
/// convergence mask, and the request buffers, so the derivative-iteration
/// protocol exists exactly once:
///
///   stepper.start(bl, edge, scope, linked, opts);
///   // round 1: the FUSED opener — root relocation + sumtable + first
///   // derivatives in ONE command (EvalRequest::sumtable_nr)
///   engine.nr_derivatives_at(edge, stepper.active(), stepper.lens(),
///                            stepper.d1(), stepper.d2());
///   stepper.feed(bl);
///   while (!stepper.done()) {
///     // derivatives at stepper.lens() for stepper.active() -> d1()/d2()
///     engine.nr_derivatives(stepper.active(), stepper.lens(),
///                           stepper.d1(), stepper.d2());
///     stepper.feed(bl);
///   }
///
/// Linked mode drives one NewtonBranch whose derivatives are summed over
/// the scope; unlinked mode drives one instance per scope partition with
/// newPAR's convergence-mask drop-out (oldPAR is the same protocol with a
/// single-partition scope). The buffers returned by lens()/d1()/d2() are
/// stable (no reallocation) from start() until the next start(), as the
/// batched EngineCore::submit()/wait() API requires of request spans.
class EdgeNrStepper {
 public:
  void start(const BranchLengths& bl, EdgeId edge, std::span<const int> scope,
             bool linked, const BranchOptOptions& opts);
  bool done() const;
  /// Partitions whose derivatives the current round must evaluate.
  const std::vector<int>& active() const { return active_; }
  /// Candidate lengths for active() (filled from the NR state on call).
  std::span<const double> lens();
  std::span<double> d1();
  std::span<double> d2();
  /// Consume the derivatives written into d1()/d2(); advances every active
  /// NR instance and writes converged lengths back into `bl`.
  void feed(BranchLengths& bl);

 private:
  EdgeId edge_ = kNoId;
  bool linked_ = false;
  std::vector<NewtonBranch> nr_;       // per scope entry (one in linked mode)
  std::vector<int> scope_;
  std::vector<std::size_t> alive_;     // indices into scope_ still iterating
  std::vector<int> active_;
  std::vector<double> lens_, d1_, d2_;
};

/// Optimize every branch length in `engine` (all partitions).
/// Returns the log-likelihood evaluated after the final pass.
double optimize_branch_lengths(Engine& engine, Strategy strategy,
                               const BranchOptOptions& opts = {});

/// Optimize a single edge's length(s) under the given strategy. The engine's
/// virtual root is relocated to `edge`. Exposed separately because the lazy
/// SPR search optimizes only the three edges around an insertion point.
void optimize_edge(Engine& engine, EdgeId edge, Strategy strategy,
                   const BranchOptOptions& opts = {});

/// Lockstep single-edge optimization across many contexts of one shared
/// core: context i optimizes (only) edges[i], and every step — the root
/// relocation, the sumtable build, each Newton-Raphson derivative round —
/// is ONE parallel region for the whole set. This is the edge-subset
/// generalization of optimize_branch_lengths_batch (which is now a loop
/// over it) and the engine of the batched SPR candidate scorer's 3-edge
/// local optimization. Per context the command sequence and arithmetic are
/// identical to optimize_edge() under `strategy` at the same thread count
/// (kOldPar iterates partitions one at a time, still lockstep across
/// contexts), so results match the sequential loop bit for bit.
void optimize_edge_batch(EngineCore& core, std::span<EvalContext* const> ctxs,
                         std::span<const EdgeId> edges, Strategy strategy,
                         const BranchOptOptions& opts = {});

/// Batched lockstep branch-length optimization across many contexts of one
/// shared core (bootstrap replicates, multi-start candidates): all contexts
/// advance edge-by-edge together, and every step — root relocation, sumtable
/// build, each Newton-Raphson iteration — is ONE parallel region for the
/// whole batch instead of one per context. Converged contexts (and, in
/// unlinked mode, converged partitions) drop out of the batch exactly as
/// newPAR's convergence mask drops partitions.
///
/// Per context the arithmetic is identical to optimize_branch_lengths()
/// under Strategy::kNewPar (or the linked schedule in linked mode) at the
/// same thread count, so per-context results match the sequential
/// one-engine-per-tree loop bit for bit.
///
/// Returns the final log-likelihood of each context.
std::vector<double> optimize_branch_lengths_batch(
    EngineCore& core, std::span<EvalContext* const> ctxs,
    const BranchOptOptions& opts = {});

}  // namespace plk
