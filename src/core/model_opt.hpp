// Model-parameter optimization: Brent over alpha and the Q-matrix
// exchangeabilities, per partition, under either parallelization strategy.
//
// Every Brent evaluation for partition p changes p's parameters and
// therefore invalidates all of p's CLVs: re-evaluating the likelihood is a
// *full tree traversal* restricted to p's patterns. That is why the paper
// reports only 5-10 % improvement for model optimization (lots of work per
// synchronization even in oldPAR) versus up to 8x for branch lengths:
//
//   * oldPAR: partitions are optimized one at a time; each Brent iteration
//     is one command over len(p)/T patterns per thread (times n-2 newviews);
//   * newPAR: one Brent instance per partition advances in lock-step; each
//     command evaluates all non-converged partitions' proposals at once.
//
// Exchangeabilities are optimized coordinate-wise (one rate at a time across
// all partitions), matching RAxML; protein partitions use fixed empirical
// matrices and skip rate optimization, also matching RAxML.
#pragma once

#include "core/engine.hpp"
#include "core/strategy.hpp"

namespace plk {

/// Tuning knobs for model-parameter optimization.
struct ModelOptOptions {
  bool optimize_alpha = true;
  bool optimize_rates = true;   ///< DNA exchangeabilities (protein: skipped)
  bool optimize_pinv = true;    ///< +I proportion (models carrying the term)
  bool optimize_free_rates = true;  ///< +R category rates AND weights
  double brent_rel_tol = 1e-3;
  int max_brent_iterations = 60;
};

/// Optimize alpha (and DNA exchangeabilities) for every partition on the
/// fixed current topology and branch lengths. Returns the final total
/// log-likelihood.
double optimize_model_parameters(Engine& engine, Strategy strategy,
                                 const ModelOptOptions& opts = {});

}  // namespace plk
