#include "core/checkpoint.hpp"

#include <cstdio>
#include <iomanip>
#include <sstream>
#include <stdexcept>

#if !defined(_WIN32)
#include <unistd.h>
#endif

#include "bio/msa_io.hpp"
#include "model/model_spec.hpp"
#include "model/rates.hpp"
#include "util/fault.hpp"
#include "util/log.hpp"

namespace plk {

namespace {

// The payload serializes only logical search state — tree topology, branch
// lengths, model parameters, search progress — never the execution layout.
// A checkpoint is therefore invariant across thread counts AND shard counts:
// a run checkpointed under --shards 1 resumes bit-identically under
// --shards 4 and vice versa (the engine's reduction tree guarantees the
// recomputed likelihoods match exactly).
constexpr const char* kMagic = "plk-checkpoint";
// Version history:
//   2  alpha/exch/freqs per partition (hard-coded discrete Gamma)
//   3  adds the canonical model-spec string, the full rate-model state
//      (Gamma shape or free rates+weights) and the +I proportion
// The reader accepts both; v2 files restore as plain Gamma at the stored
// alpha, exactly as the engine that wrote them would.
constexpr int kVersion = 3;
constexpr int kMinVersion = 2;

[[noreturn]] void fail(const std::string& what) {
  throw std::runtime_error("checkpoint: " + what);
}

std::string expect_word(std::istream& in, const char* what) {
  std::string w;
  if (!(in >> w)) fail(std::string("missing ") + what);
  return w;
}

void expect_keyword(std::istream& in, const char* kw) {
  if (expect_word(in, kw) != kw) fail(std::string("expected '") + kw + "'");
}

/// FNV-1a 64-bit over the checkpoint payload. Not cryptographic — the
/// threat model is torn writes, truncation and bit rot, not an adversary.
std::uint64_t fnv1a64(std::string_view s) {
  std::uint64_t h = 1469598103934665603ull;
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return h;
}

}  // namespace

std::string serialize_checkpoint(const EvalContext& ctx,
                                 const SearchProgress* progress) {
  std::ostringstream out;
  out.precision(17);
  const Tree& tree = ctx.tree();
  const BranchLengths& bl = ctx.branch_lengths();
  const int P = ctx.partition_count();

  out << kMagic << ' ' << kVersion << '\n';
  out << "taxa " << tree.tip_count() << '\n';
  for (NodeId t = 0; t < tree.tip_count(); ++t)
    out << tree.label(t) << '\n';

  out << "edges " << tree.edge_count() << '\n';
  for (EdgeId e = 0; e < tree.edge_count(); ++e)
    out << tree.edge(e).a << ' ' << tree.edge(e).b << ' ' << tree.length(e)
        << '\n';

  out << "partitions " << P << '\n';
  for (int p = 0; p < P; ++p) {
    const PartitionModel& m = ctx.model(p);
    out << "alpha " << m.alpha() << '\n';
    const auto& exch = m.model().exchangeabilities();
    out << "exch " << exch.size();
    for (double r : exch) out << ' ' << r;
    out << '\n';
    const auto& freqs = m.model().freqs();
    out << "freqs " << freqs.size();
    for (double f : freqs) out << ' ' << f;
    out << '\n';
    // v3: the structural spec (metadata for humans and servers) plus the
    // full rate-model state, so +R/+I resume bit-identically.
    out << "model " << describe_model(m) << '\n';
    const RateModel& r = m.rate_model();
    if (r.kind() == RateModel::Kind::kGamma) {
      out << "ratemodel gamma " << r.categories() << ' '
          << static_cast<int>(r.gamma_mode()) << ' ' << r.alpha() << '\n';
    } else {
      out << "ratemodel free " << r.categories();
      for (double x : r.rates()) out << ' ' << x;
      for (double w : r.weights()) out << ' ' << w;
      out << '\n';
    }
    out << "pinv " << (r.invariant_sites() ? 1 : 0) << ' ' << r.p_inv()
        << '\n';
  }

  out << "lengths " << (bl.linked() ? "linked" : "unlinked") << '\n';
  const int cols = bl.linked() ? 1 : P;
  for (EdgeId e = 0; e < tree.edge_count(); ++e) {
    for (int p = 0; p < cols; ++p) out << (p ? " " : "") << bl.get(e, p);
    out << '\n';
  }

  if (progress != nullptr && progress->valid)
    out << "search " << progress->rounds << ' ' << progress->accepted_moves
        << ' ' << progress->candidates_scored << ' ' << progress->lnl << ' '
        << (progress->done ? 1 : 0) << '\n';

  // Content checksum over everything written so far (including the final
  // newline), as the last line — readers verify it before parsing anything.
  std::string text = out.str();
  std::ostringstream sum;
  sum << "checksum " << std::hex << std::setw(16) << std::setfill('0')
      << fnv1a64(text) << '\n';
  text += sum.str();
  return text;
}

void apply_checkpoint(EvalContext& ctx, std::string_view text,
                      SearchProgress* progress) {
  if (progress != nullptr) *progress = SearchProgress{};
  // Restoring replaces the tree the queued commands were assembled
  // against; like every other context mutator, refuse mid-batch.
  if (ctx.core().has_pending())
    fail("core has pending batched requests; wait() before restoring");

  // Verify the checksum trailer before parsing a single field: a torn or
  // bit-flipped file must not be half-applied (or even half-trusted).
  const auto cpos = text.rfind("\nchecksum ");
  if (cpos == std::string_view::npos)
    fail("missing checksum (corrupt or truncated checkpoint)");
  const std::string_view payload = text.substr(0, cpos + 1);  // keep the \n
  std::uint64_t want = 0;
  try {
    want = std::stoull(std::string(text.substr(cpos + 10)), nullptr, 16);
  } catch (const std::exception&) {
    fail("unparseable checksum field");
  }
  if (fnv1a64(payload) != want)
    fail("checksum mismatch (corrupt or truncated checkpoint)");

  std::istringstream in{std::string(payload)};
  if (expect_word(in, "magic") != kMagic) fail("bad magic");
  int version = 0;
  in >> version;
  if (version < kMinVersion || version > kVersion)
    fail("unsupported version " + std::to_string(version));

  expect_keyword(in, "taxa");
  int n_taxa = 0;
  in >> n_taxa;
  if (n_taxa != ctx.tree().tip_count()) fail("taxon count mismatch");
  std::vector<std::string> labels(static_cast<std::size_t>(n_taxa));
  for (auto& l : labels) {
    if (!(in >> l)) fail("truncated taxon list");
  }
  for (NodeId t = 0; t < n_taxa; ++t)
    if (labels[static_cast<std::size_t>(t)] != ctx.tree().label(t))
      fail("taxon '" + labels[static_cast<std::size_t>(t)] +
           "' does not match the engine's alignment");

  expect_keyword(in, "edges");
  int n_edges = 0;
  in >> n_edges;
  if (n_edges != ctx.tree().edge_count()) fail("edge count mismatch");
  std::vector<Tree::Edge> edges(static_cast<std::size_t>(n_edges));
  for (auto& e : edges)
    if (!(in >> e.a >> e.b >> e.length)) fail("truncated edge list");

  expect_keyword(in, "partitions");
  int P = 0;
  in >> P;
  if (P != ctx.partition_count()) fail("partition count mismatch");

  struct PartState {
    double alpha = 1.0;
    std::vector<double> exch, freqs;
    // v3 rate-model state (v2 files restore as plain Gamma at `alpha`).
    bool has_rate_model = false;
    bool rm_gamma = true;
    int rm_cats = 0;
    int rm_mode = 0;
    double rm_alpha = 1.0;
    std::vector<double> rm_rates, rm_weights;
    bool invariant = false;
    double p_inv = 0.0;
  };
  std::vector<PartState> parts(static_cast<std::size_t>(P));
  for (auto& ps : parts) {
    expect_keyword(in, "alpha");
    if (!(in >> ps.alpha)) fail("truncated alpha");
    expect_keyword(in, "exch");
    std::size_t k = 0;
    in >> k;
    ps.exch.resize(k);
    for (auto& r : ps.exch)
      if (!(in >> r)) fail("truncated exchangeabilities");
    expect_keyword(in, "freqs");
    in >> k;
    ps.freqs.resize(k);
    for (auto& f : ps.freqs)
      if (!(in >> f)) fail("truncated frequencies");
    if (version >= 3) {
      expect_keyword(in, "model");
      const std::string spec = expect_word(in, "model spec");
      parse_model_spec(spec);  // validates; the numbers below are canonical
      expect_keyword(in, "ratemodel");
      const std::string kind = expect_word(in, "rate-model kind");
      if (kind == "gamma") {
        if (!(in >> ps.rm_cats >> ps.rm_mode >> ps.rm_alpha))
          fail("truncated gamma rate model");
        if (ps.rm_mode != 0 && ps.rm_mode != 1) fail("bad gamma mode");
      } else if (kind == "free") {
        ps.rm_gamma = false;
        if (!(in >> ps.rm_cats)) fail("truncated free rate model");
        if (ps.rm_cats < 1 || ps.rm_cats > 64)
          fail("bad free-rate category count");
        ps.rm_rates.resize(static_cast<std::size_t>(ps.rm_cats));
        ps.rm_weights.resize(static_cast<std::size_t>(ps.rm_cats));
        for (auto& r : ps.rm_rates)
          if (!(in >> r)) fail("truncated free rates");
        for (auto& w : ps.rm_weights)
          if (!(in >> w)) fail("truncated free weights");
      } else {
        fail("unknown rate-model kind '" + kind + "'");
      }
      expect_keyword(in, "pinv");
      int inv_flag = 0;
      if (!(in >> inv_flag >> ps.p_inv)) fail("truncated pinv");
      if (inv_flag != 0 && inv_flag != 1) fail("bad pinv flag");
      ps.invariant = inv_flag == 1;
      ps.has_rate_model = true;
    }
  }

  expect_keyword(in, "lengths");
  const std::string mode = expect_word(in, "lengths mode");
  const bool linked = mode == "linked";
  if (!linked && mode != "unlinked") fail("bad lengths mode");
  if (linked != ctx.branch_lengths().linked())
    fail("branch-length mode mismatch");
  const int cols = linked ? 1 : P;
  std::vector<std::vector<double>> lens(
      static_cast<std::size_t>(n_edges),
      std::vector<double>(static_cast<std::size_t>(cols)));
  for (auto& row : lens)
    for (auto& v : row)
      if (!(in >> v)) fail("truncated branch lengths");

  // Optional search-progress line (written by search_ml's round-boundary
  // checkpoints); nothing else may follow.
  SearchProgress sp;
  std::string word;
  if (in >> word) {
    if (word != "search") fail("unexpected trailing content '" + word + "'");
    int done_flag = 0;
    if (!(in >> sp.rounds >> sp.accepted_moves >> sp.candidates_scored >>
          sp.lnl >> done_flag))
      fail("truncated search progress");
    sp.done = done_flag != 0;
    sp.valid = true;
  }

  // All parsed and checksum-verified; now mutate the engine (strong-ish
  // exception safety: the model setters validate before we touch anything).
  Tree restored = Tree::from_edges(std::move(labels), std::move(edges));
  ctx.tree() = std::move(restored);
  ctx.invalidate_all();
  for (int p = 0; p < P; ++p) {
    auto& ps = parts[static_cast<std::size_t>(p)];
    PartitionModel& m = ctx.model(p);
    if (ps.exch.size() != m.model().exchangeabilities().size() ||
        ps.freqs.size() != m.model().freqs().size())
      fail("model dimension mismatch in partition " + std::to_string(p));
    m.model().set_exchangeabilities(std::move(ps.exch));
    m.model().set_freqs(std::move(ps.freqs));
    if (ps.has_rate_model) {
      if (ps.rm_cats != m.gamma_categories())
        fail("rate category count mismatch in partition " + std::to_string(p) +
             " (engine has " + std::to_string(m.gamma_categories()) +
             ", checkpoint has " + std::to_string(ps.rm_cats) + ")");
      RateModel rm =
          ps.rm_gamma
              ? RateModel::gamma(ps.rm_alpha, ps.rm_cats,
                                 static_cast<GammaMode>(ps.rm_mode))
              : RateModel::restore_free(std::move(ps.rm_rates),
                                        std::move(ps.rm_weights), ps.invariant,
                                        ps.p_inv);
      if (ps.rm_gamma && ps.invariant) rm.enable_invariant(ps.p_inv);
      m.set_rate_model(std::move(rm));
    } else {
      m.set_alpha(ps.alpha);
    }
    ctx.invalidate_partition(p);
  }
  for (EdgeId e = 0; e < n_edges; ++e)
    for (int p = 0; p < cols; ++p)
      ctx.branch_lengths().set(
          e, p, lens[static_cast<std::size_t>(e)][static_cast<std::size_t>(p)]);
  if (progress != nullptr) *progress = sp;
}

std::string serialize_checkpoint(const Engine& engine) {
  return serialize_checkpoint(engine.context());
}

void apply_checkpoint(Engine& engine, std::string_view text) {
  apply_checkpoint(engine.context(), text);
}

namespace {

/// Durable atomic replace: write `path.tmp` fully (flushed and fsynced),
/// rotate the current file to `path.1` (the previous generation the loader
/// falls back to), then rename the temp file into place. A crash at any
/// point leaves `path` either the old or the new generation — never torn —
/// and at worst a stale `path.tmp`, which no reader ever opens.
void write_file_durable(const std::string& path, const std::string& text) {
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) fail("cannot open '" + tmp + "' for writing");
  // Fault injection (tests only): die after a partial write, before
  // anything durable — the torn-write crash the temp-file protocol absorbs.
  if (fault::enabled() && fault::should_fire(fault::Site::kCheckpointIo)) {
    std::fwrite(text.data(), 1, text.size() / 2, f);
    std::fclose(f);
    fail("injected I/O failure writing '" + tmp + "'");
  }
  if (std::fwrite(text.data(), 1, text.size(), f) != text.size()) {
    std::fclose(f);
    fail("short write to '" + tmp + "'");
  }
  if (std::fflush(f) != 0) {
    std::fclose(f);
    fail("flush failed for '" + tmp + "'");
  }
#if !defined(_WIN32)
  fsync(fileno(f));
#endif
  if (std::fclose(f) != 0) fail("close failed for '" + tmp + "'");
  // Rotate the previous generation; failure just means there was none yet.
  std::rename(path.c_str(), (path + ".1").c_str());
  if (std::rename(tmp.c_str(), path.c_str()) != 0)
    fail("cannot rename '" + tmp + "' over '" + path + "'");
}

}  // namespace

void save_checkpoint_file(const EvalContext& ctx, const std::string& path,
                          const SearchProgress* progress) {
  write_file_durable(path, serialize_checkpoint(ctx, progress));
}

void load_checkpoint_file(EvalContext& ctx, const std::string& path,
                          SearchProgress* progress) {
  // apply_checkpoint parses and checksum-verifies the whole file before
  // mutating anything, so falling back after a failed primary is safe.
  std::string primary_error;
  try {
    apply_checkpoint(ctx, read_file(path), progress);
    return;
  } catch (const std::exception& e) {
    primary_error = e.what();
  }
  const std::string prev = path + ".1";
  try {
    apply_checkpoint(ctx, read_file(prev), progress);
  } catch (const std::exception& e) {
    fail("cannot load '" + path + "' (" + primary_error +
         "); previous generation '" + prev + "' also failed (" + e.what() +
         ")");
  }
  log_warn("checkpoint: '" + path + "' unusable (" + primary_error +
           "); resumed from previous generation '" + prev + "'");
}

void save_checkpoint_file(const Engine& engine, const std::string& path) {
  save_checkpoint_file(engine.context(), path);
}

void load_checkpoint_file(Engine& engine, const std::string& path) {
  load_checkpoint_file(engine.context(), path);
}

}  // namespace plk
