#include "core/checkpoint.hpp"

#include <sstream>
#include <stdexcept>

#include "bio/msa_io.hpp"

namespace plk {

namespace {

constexpr const char* kMagic = "plk-checkpoint";
constexpr int kVersion = 1;

[[noreturn]] void fail(const std::string& what) {
  throw std::runtime_error("checkpoint: " + what);
}

std::string expect_word(std::istream& in, const char* what) {
  std::string w;
  if (!(in >> w)) fail(std::string("missing ") + what);
  return w;
}

void expect_keyword(std::istream& in, const char* kw) {
  if (expect_word(in, kw) != kw) fail(std::string("expected '") + kw + "'");
}

}  // namespace

std::string serialize_checkpoint(const EvalContext& ctx) {
  std::ostringstream out;
  out.precision(17);
  const Tree& tree = ctx.tree();
  const BranchLengths& bl = ctx.branch_lengths();
  const int P = ctx.partition_count();

  out << kMagic << ' ' << kVersion << '\n';
  out << "taxa " << tree.tip_count() << '\n';
  for (NodeId t = 0; t < tree.tip_count(); ++t)
    out << tree.label(t) << '\n';

  out << "edges " << tree.edge_count() << '\n';
  for (EdgeId e = 0; e < tree.edge_count(); ++e)
    out << tree.edge(e).a << ' ' << tree.edge(e).b << ' ' << tree.length(e)
        << '\n';

  out << "partitions " << P << '\n';
  for (int p = 0; p < P; ++p) {
    const PartitionModel& m = ctx.model(p);
    out << "alpha " << m.alpha() << '\n';
    const auto& exch = m.model().exchangeabilities();
    out << "exch " << exch.size();
    for (double r : exch) out << ' ' << r;
    out << '\n';
    const auto& freqs = m.model().freqs();
    out << "freqs " << freqs.size();
    for (double f : freqs) out << ' ' << f;
    out << '\n';
  }

  out << "lengths " << (bl.linked() ? "linked" : "unlinked") << '\n';
  const int cols = bl.linked() ? 1 : P;
  for (EdgeId e = 0; e < tree.edge_count(); ++e) {
    for (int p = 0; p < cols; ++p) out << (p ? " " : "") << bl.get(e, p);
    out << '\n';
  }
  return out.str();
}

void apply_checkpoint(EvalContext& ctx, std::string_view text) {
  // Restoring replaces the tree the queued commands were assembled
  // against; like every other context mutator, refuse mid-batch.
  if (ctx.core().has_pending())
    fail("core has pending batched requests; wait() before restoring");
  std::istringstream in{std::string(text)};
  if (expect_word(in, "magic") != kMagic) fail("bad magic");
  int version = 0;
  in >> version;
  if (version != kVersion) fail("unsupported version");

  expect_keyword(in, "taxa");
  int n_taxa = 0;
  in >> n_taxa;
  if (n_taxa != ctx.tree().tip_count()) fail("taxon count mismatch");
  std::vector<std::string> labels(static_cast<std::size_t>(n_taxa));
  for (auto& l : labels) {
    if (!(in >> l)) fail("truncated taxon list");
  }
  for (NodeId t = 0; t < n_taxa; ++t)
    if (labels[static_cast<std::size_t>(t)] != ctx.tree().label(t))
      fail("taxon '" + labels[static_cast<std::size_t>(t)] +
           "' does not match the engine's alignment");

  expect_keyword(in, "edges");
  int n_edges = 0;
  in >> n_edges;
  if (n_edges != ctx.tree().edge_count()) fail("edge count mismatch");
  std::vector<Tree::Edge> edges(static_cast<std::size_t>(n_edges));
  for (auto& e : edges)
    if (!(in >> e.a >> e.b >> e.length)) fail("truncated edge list");

  expect_keyword(in, "partitions");
  int P = 0;
  in >> P;
  if (P != ctx.partition_count()) fail("partition count mismatch");

  struct PartState {
    double alpha = 1.0;
    std::vector<double> exch, freqs;
  };
  std::vector<PartState> parts(static_cast<std::size_t>(P));
  for (auto& ps : parts) {
    expect_keyword(in, "alpha");
    if (!(in >> ps.alpha)) fail("truncated alpha");
    expect_keyword(in, "exch");
    std::size_t k = 0;
    in >> k;
    ps.exch.resize(k);
    for (auto& r : ps.exch)
      if (!(in >> r)) fail("truncated exchangeabilities");
    expect_keyword(in, "freqs");
    in >> k;
    ps.freqs.resize(k);
    for (auto& f : ps.freqs)
      if (!(in >> f)) fail("truncated frequencies");
  }

  expect_keyword(in, "lengths");
  const std::string mode = expect_word(in, "lengths mode");
  const bool linked = mode == "linked";
  if (!linked && mode != "unlinked") fail("bad lengths mode");
  if (linked != ctx.branch_lengths().linked())
    fail("branch-length mode mismatch");
  const int cols = linked ? 1 : P;
  std::vector<std::vector<double>> lens(
      static_cast<std::size_t>(n_edges),
      std::vector<double>(static_cast<std::size_t>(cols)));
  for (auto& row : lens)
    for (auto& v : row)
      if (!(in >> v)) fail("truncated branch lengths");

  // All parsed; now mutate the engine (strong-ish exception safety: the
  // model setters validate before we touch anything).
  Tree restored = Tree::from_edges(std::move(labels), std::move(edges));
  ctx.tree() = std::move(restored);
  ctx.invalidate_all();
  for (int p = 0; p < P; ++p) {
    auto& ps = parts[static_cast<std::size_t>(p)];
    PartitionModel& m = ctx.model(p);
    if (ps.exch.size() != m.model().exchangeabilities().size() ||
        ps.freqs.size() != m.model().freqs().size())
      fail("model dimension mismatch in partition " + std::to_string(p));
    m.model().set_exchangeabilities(std::move(ps.exch));
    m.model().set_freqs(std::move(ps.freqs));
    m.set_alpha(ps.alpha);
    ctx.invalidate_partition(p);
  }
  for (EdgeId e = 0; e < n_edges; ++e)
    for (int p = 0; p < cols; ++p)
      ctx.branch_lengths().set(
          e, p, lens[static_cast<std::size_t>(e)][static_cast<std::size_t>(p)]);
}

std::string serialize_checkpoint(const Engine& engine) {
  return serialize_checkpoint(engine.context());
}

void apply_checkpoint(Engine& engine, std::string_view text) {
  apply_checkpoint(engine.context(), text);
}

void save_checkpoint_file(const EvalContext& ctx, const std::string& path) {
  write_file(path, serialize_checkpoint(ctx));
}

void load_checkpoint_file(EvalContext& ctx, const std::string& path) {
  apply_checkpoint(ctx, read_file(path));
}

void save_checkpoint_file(const Engine& engine, const std::string& path) {
  write_file(path, serialize_checkpoint(engine));
}

void load_checkpoint_file(Engine& engine, const std::string& path) {
  apply_checkpoint(engine, read_file(path));
}

}  // namespace plk
