#include "core/model_opt.hpp"

#include <cmath>
#include <vector>

#include "model/gamma.hpp"
#include "model/subst_model.hpp"
#include "optimize/brent.hpp"

namespace plk {

namespace {

EdgeId eval_edge(const Engine& engine) {
  return engine.root_edge() == kNoId ? 0 : engine.root_edge();
}

/// Apply a parameter proposal for one partition (alpha or exchangeability
/// `rate_index`) and invalidate its CLVs.
void apply_param(Engine& engine, int p, int rate_index, double value) {
  if (rate_index < 0)
    engine.model(p).set_alpha(value);
  else
    engine.model(p).model().set_exchangeability(rate_index, value);
  engine.invalidate_partition(p);
}

double current_param(const Engine& engine, int p, int rate_index) {
  if (rate_index < 0) return engine.model(p).alpha();
  return engine.model(p).model()
      .exchangeabilities()[static_cast<std::size_t>(rate_index)];
}

/// oldPAR: optimize `rate_index` (or alpha when negative) for the listed
/// partitions one at a time; every Brent iteration is a single-partition
/// likelihood command.
void optimize_param_old(Engine& engine, const std::vector<int>& parts,
                        int rate_index, double lo, double hi,
                        const ModelOptOptions& opts) {
  const EdgeId edge = eval_edge(engine);
  for (int p : parts) {
    const double start = current_param(engine, p, rate_index);
    BrentMinimizer bm(lo, hi, opts.brent_rel_tol, 1e-8,
                      opts.max_brent_iterations, start);
    while (!bm.done()) {
      apply_param(engine, p, rate_index, bm.proposal());
      const double lnl = engine.loglikelihood(edge, {p});
      bm.feed(-lnl);
    }
    // Restore the best point found (Brent's last proposal need not be it).
    apply_param(engine, p, rate_index, bm.best());
    engine.loglikelihood(edge, {p});
  }
}

/// newPAR: one Brent instance per listed partition, advanced in lock-step;
/// each iteration evaluates all active partitions' proposals in ONE command,
/// with converged partitions masked out (the paper's convergence vector).
void optimize_param_new(Engine& engine, const std::vector<int>& parts,
                        int rate_index, double lo, double hi,
                        const ModelOptOptions& opts) {
  const EdgeId edge = eval_edge(engine);
  std::vector<BrentMinimizer> bm;
  bm.reserve(parts.size());
  for (int p : parts)
    bm.emplace_back(lo, hi, opts.brent_rel_tol, 1e-8,
                    opts.max_brent_iterations,
                    current_param(engine, p, rate_index));

  std::vector<int> active_idx(parts.size());
  for (std::size_t k = 0; k < parts.size(); ++k)
    active_idx[k] = static_cast<int>(k);

  while (!active_idx.empty()) {
    std::vector<int> active_parts;
    active_parts.reserve(active_idx.size());
    for (int k : active_idx) {
      const int p = parts[static_cast<std::size_t>(k)];
      apply_param(engine, p, rate_index,
                  bm[static_cast<std::size_t>(k)].proposal());
      active_parts.push_back(p);
    }
    engine.loglikelihood(edge, active_parts);
    const auto lnl = engine.per_partition_lnl();

    std::vector<int> still;
    for (int k : active_idx) {
      auto& inst = bm[static_cast<std::size_t>(k)];
      inst.feed(-lnl[static_cast<std::size_t>(parts[static_cast<std::size_t>(k)])]);
      if (!inst.done()) still.push_back(k);
    }
    active_idx = std::move(still);
  }

  // Commit every partition's best point (one final joint evaluation).
  for (std::size_t k = 0; k < parts.size(); ++k)
    apply_param(engine, parts[k], rate_index, bm[k].best());
  engine.loglikelihood(edge, parts);
}

void optimize_param(Engine& engine, Strategy strategy,
                    const std::vector<int>& parts, int rate_index, double lo,
                    double hi, const ModelOptOptions& opts) {
  if (parts.empty()) return;
  if (strategy == Strategy::kOldPar)
    optimize_param_old(engine, parts, rate_index, lo, hi, opts);
  else
    optimize_param_new(engine, parts, rate_index, lo, hi, opts);
}

}  // namespace

double optimize_model_parameters(Engine& engine, Strategy strategy,
                                 const ModelOptOptions& opts) {
  std::vector<int> all_parts, dna_parts;
  int max_dna_rates = 0;
  for (int p = 0; p < engine.partition_count(); ++p) {
    all_parts.push_back(p);
    if (engine.model(p).model().states() == 4) {
      dna_parts.push_back(p);
      max_dna_rates = engine.model(p).model().free_rate_count();
    }
  }

  if (opts.optimize_alpha)
    optimize_param(engine, strategy, all_parts, -1, kAlphaMin, kAlphaMax,
                   opts);

  if (opts.optimize_rates) {
    // Coordinate descent over the DNA exchangeabilities: rate k is optimized
    // across all DNA partitions (simultaneously under newPAR) before moving
    // to rate k+1 — the schedule RAxML uses.
    for (int k = 0; k < max_dna_rates; ++k)
      optimize_param(engine, strategy, dna_parts, k, SubstModel::kRateMin,
                     SubstModel::kRateMax, opts);
  }

  return engine.loglikelihood(eval_edge(engine));
}

}  // namespace plk
