#include "core/model_opt.hpp"

#include <cmath>
#include <vector>

#include "model/gamma.hpp"
#include "model/rates.hpp"
#include "model/subst_model.hpp"
#include "optimize/brent.hpp"

namespace plk {

namespace {

EdgeId eval_edge(const Engine& engine) {
  return engine.root_edge() == kNoId ? 0 : engine.root_edge();
}

/// One optimizable model coordinate. The free-rate/-weight mutators
/// re-normalize the whole mixture inside apply (the normalization invariant
/// sum w_c r_c = 1/(1-p) is restored after every proposal), so each
/// coordinate is a well-defined deterministic objective for Brent even
/// though the underlying parameters move together.
struct ParamRef {
  enum class Kind { kAlpha, kExch, kPinv, kFreeRate, kFreeWeight };
  Kind kind = Kind::kAlpha;
  int index = 0;  ///< exchangeability / free category index
};

/// Apply a parameter proposal for one partition and invalidate its CLVs.
void apply_param(Engine& engine, int p, ParamRef ref, double value) {
  PartitionModel& m = engine.model(p);
  switch (ref.kind) {
    case ParamRef::Kind::kAlpha:
      m.set_alpha(value);
      break;
    case ParamRef::Kind::kExch:
      m.model().set_exchangeability(ref.index, value);
      break;
    case ParamRef::Kind::kPinv:
      m.set_p_inv(value);
      break;
    case ParamRef::Kind::kFreeRate:
      m.set_free_rate(ref.index, value);
      break;
    case ParamRef::Kind::kFreeWeight:
      m.set_free_weight(ref.index, value);
      break;
  }
  engine.invalidate_partition(p);
}

/// Free-category rates span [kFreeRateMin, kFreeRateMax] — eight decades.
/// Brent probes them in log space so the early golden sections land on
/// sensible magnitudes; a linear interval would spend every first probe
/// above 1e3 and pin the small-rate categories against the lower bound.
bool log_scaled(ParamRef ref) {
  return ref.kind == ParamRef::Kind::kFreeRate;
}
double to_brent(ParamRef ref, double v) {
  return log_scaled(ref) ? std::log(v) : v;
}
double from_brent(ParamRef ref, double v) {
  return log_scaled(ref) ? std::exp(v) : v;
}

double current_param(const Engine& engine, int p, ParamRef ref) {
  const PartitionModel& m = engine.model(p);
  switch (ref.kind) {
    case ParamRef::Kind::kAlpha:
      return m.alpha();
    case ParamRef::Kind::kExch:
      return m.model().exchangeabilities()[static_cast<std::size_t>(ref.index)];
    case ParamRef::Kind::kPinv:
      return m.p_inv();
    case ParamRef::Kind::kFreeRate:
      return m.rate_model().rates()[static_cast<std::size_t>(ref.index)];
    case ParamRef::Kind::kFreeWeight:
      return m.rate_model().weights()[static_cast<std::size_t>(ref.index)];
  }
  return 0.0;  // unreachable
}

/// oldPAR: optimize one coordinate for the listed partitions one at a time;
/// every Brent iteration is a single-partition likelihood command.
void optimize_param_old(Engine& engine, const std::vector<int>& parts,
                        ParamRef ref, double lo, double hi,
                        const ModelOptOptions& opts) {
  const EdgeId edge = eval_edge(engine);
  for (int p : parts) {
    const double start = to_brent(ref, current_param(engine, p, ref));
    BrentMinimizer bm(to_brent(ref, lo), to_brent(ref, hi),
                      opts.brent_rel_tol, 1e-8, opts.max_brent_iterations,
                      start);
    while (!bm.done()) {
      apply_param(engine, p, ref, from_brent(ref, bm.proposal()));
      const double lnl = engine.loglikelihood(edge, {p});
      bm.feed(-lnl);
    }
    // Restore the best point found (Brent's last proposal need not be it).
    apply_param(engine, p, ref, from_brent(ref, bm.best()));
    engine.loglikelihood(edge, {p});
  }
}

/// newPAR: one Brent instance per listed partition, advanced in lock-step;
/// each iteration evaluates all active partitions' proposals in ONE command,
/// with converged partitions masked out (the paper's convergence vector).
void optimize_param_new(Engine& engine, const std::vector<int>& parts,
                        ParamRef ref, double lo, double hi,
                        const ModelOptOptions& opts) {
  const EdgeId edge = eval_edge(engine);
  std::vector<BrentMinimizer> bm;
  bm.reserve(parts.size());
  for (int p : parts)
    bm.emplace_back(to_brent(ref, lo), to_brent(ref, hi), opts.brent_rel_tol,
                    1e-8, opts.max_brent_iterations,
                    to_brent(ref, current_param(engine, p, ref)));

  std::vector<int> active_idx(parts.size());
  for (std::size_t k = 0; k < parts.size(); ++k)
    active_idx[k] = static_cast<int>(k);

  while (!active_idx.empty()) {
    std::vector<int> active_parts;
    active_parts.reserve(active_idx.size());
    for (int k : active_idx) {
      const int p = parts[static_cast<std::size_t>(k)];
      apply_param(engine, p, ref,
                  from_brent(ref, bm[static_cast<std::size_t>(k)].proposal()));
      active_parts.push_back(p);
    }
    engine.loglikelihood(edge, active_parts);
    const auto lnl = engine.per_partition_lnl();

    std::vector<int> still;
    for (int k : active_idx) {
      auto& inst = bm[static_cast<std::size_t>(k)];
      inst.feed(-lnl[static_cast<std::size_t>(parts[static_cast<std::size_t>(k)])]);
      if (!inst.done()) still.push_back(k);
    }
    active_idx = std::move(still);
  }

  // Commit every partition's best point (one final joint evaluation).
  for (std::size_t k = 0; k < parts.size(); ++k)
    apply_param(engine, parts[k], ref, from_brent(ref, bm[k].best()));
  engine.loglikelihood(edge, parts);
}

void optimize_param(Engine& engine, Strategy strategy,
                    const std::vector<int>& parts, ParamRef ref, double lo,
                    double hi, const ModelOptOptions& opts) {
  if (parts.empty()) return;
  if (strategy == Strategy::kOldPar)
    optimize_param_old(engine, parts, ref, lo, hi, opts);
  else
    optimize_param_new(engine, parts, ref, lo, hi, opts);
}

}  // namespace

double optimize_model_parameters(Engine& engine, Strategy strategy,
                                 const ModelOptOptions& opts) {
  std::vector<int> gamma_parts, dna_parts, pinv_parts, free_parts;
  int max_dna_rates = 0;
  int max_free_cats = 0;
  for (int p = 0; p < engine.partition_count(); ++p) {
    const PartitionModel& m = engine.model(p);
    const RateModel& r = m.rate_model();
    if (r.kind() == RateModel::Kind::kGamma && r.categories() > 1)
      gamma_parts.push_back(p);
    if (m.model().states() == 4) {
      dna_parts.push_back(p);
      max_dna_rates = m.model().free_rate_count();
    }
    if (r.invariant_sites()) pinv_parts.push_back(p);
    if (r.kind() == RateModel::Kind::kFree) {
      free_parts.push_back(p);
      max_free_cats = std::max(max_free_cats, r.categories());
    }
  }

  if (opts.optimize_alpha)
    optimize_param(engine, strategy, gamma_parts,
                   {ParamRef::Kind::kAlpha, 0}, kAlphaMin, kAlphaMax, opts);

  if (opts.optimize_rates) {
    // Coordinate descent over the DNA exchangeabilities: rate k is optimized
    // across all DNA partitions (simultaneously under newPAR) before moving
    // to rate k+1 — the schedule RAxML uses.
    for (int k = 0; k < max_dna_rates; ++k)
      optimize_param(engine, strategy, dna_parts, {ParamRef::Kind::kExch, k},
                     SubstModel::kRateMin, SubstModel::kRateMax, opts);
  }

  if (opts.optimize_free_rates) {
    // Same coordinate-descent schedule for the +R mixture: category c's rate
    // across all free-rate partitions (those with at least c+1 categories),
    // then category c's weight — each proposal re-normalizes inside apply.
    const auto with_cat = [&](int c) {
      std::vector<int> out;
      for (int p : free_parts)
        if (engine.model(p).rate_model().categories() > c) out.push_back(p);
      return out;
    };
    for (int c = 0; c < max_free_cats; ++c)
      optimize_param(engine, strategy, with_cat(c),
                     {ParamRef::Kind::kFreeRate, c}, kFreeRateMin,
                     kFreeRateMax, opts);
    for (int c = 0; c < max_free_cats; ++c)
      optimize_param(engine, strategy, with_cat(c),
                     {ParamRef::Kind::kFreeWeight, c}, kFreeWeightMin,
                     1.0 - kFreeWeightMin, opts);
  }

  if (opts.optimize_pinv)
    optimize_param(engine, strategy, pinv_parts, {ParamRef::Kind::kPinv, 0},
                   kPinvMin, kPinvMax, opts);

  return engine.loglikelihood(eval_edge(engine));
}

}  // namespace plk
