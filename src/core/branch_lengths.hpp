// Branch-length storage: joint (linked) or per-partition (unlinked).
//
// The paper's load-balance problem is most severe for analyses with a
// *per-partition branch length estimate*: every edge then carries one length
// per partition, each optimized by its own Newton-Raphson iteration. The
// linked mode shares a single length per edge across all partitions (the
// joint estimate, for which old and new parallelizations differ by only
// ~5 %).
#pragma once

#include <stdexcept>
#include <vector>

#include "tree/tree.hpp"

namespace plk {

/// Per-edge branch lengths, optionally expanded per partition.
class BranchLengths {
 public:
  /// `linked`: one shared length per edge; otherwise edges x partitions.
  BranchLengths(int edge_count, int partition_count, bool linked,
                double initial = 0.1)
      : edges_(edge_count),
        partitions_(partition_count),
        linked_(linked),
        values_(static_cast<std::size_t>(edge_count) *
                    (linked ? 1 : static_cast<std::size_t>(partition_count)),
                initial) {}

  /// Initialize every partition's length from the tree's default lengths.
  static BranchLengths from_tree(const Tree& tree, int partition_count,
                                 bool linked) {
    BranchLengths bl(tree.edge_count(), partition_count, linked);
    for (EdgeId e = 0; e < tree.edge_count(); ++e) bl.set_all(e, tree.length(e));
    return bl;
  }

  bool linked() const { return linked_; }
  int edge_count() const { return edges_; }
  int partition_count() const { return partitions_; }

  /// Length of edge `e` for partition `p` (p ignored in linked mode).
  double get(EdgeId e, int p) const { return values_[index(e, p)]; }

  /// Set edge `e`, partition `p` (in linked mode this sets the shared value).
  void set(EdgeId e, int p, double v) { values_[index(e, p)] = check(v); }

  /// Set edge `e` for all partitions.
  void set_all(EdgeId e, double v) {
    check(v);
    if (linked_) {
      values_[static_cast<std::size_t>(e)] = v;
    } else {
      for (int p = 0; p < partitions_; ++p) values_[index(e, p)] = v;
    }
  }

  /// Mean length of edge `e` across partitions (== the value in linked mode);
  /// used when exporting a single tree with branch lengths.
  double mean(EdgeId e) const {
    if (linked_) return values_[static_cast<std::size_t>(e)];
    double s = 0.0;
    for (int p = 0; p < partitions_; ++p) s += values_[index(e, p)];
    return s / static_cast<double>(partitions_);
  }

 private:
  std::size_t index(EdgeId e, int p) const {
    if (e < 0 || e >= edges_) throw std::out_of_range("edge id");
    if (linked_) return static_cast<std::size_t>(e);
    if (p < 0 || p >= partitions_) throw std::out_of_range("partition id");
    return static_cast<std::size_t>(e) * static_cast<std::size_t>(partitions_) +
           static_cast<std::size_t>(p);
  }
  static double check(double v) {
    if (!(v >= 0.0)) throw std::invalid_argument("negative/NaN branch length");
    return v;
  }

  int edges_;
  int partitions_;
  bool linked_;
  std::vector<double> values_;
};

}  // namespace plk
