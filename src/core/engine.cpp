#include "core/engine.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <stdexcept>
#include <unordered_map>

#include "model/matrix.hpp"

namespace plk {

namespace {

/// Dispatch a generic lambda templated on the (compile-time) state count.
template <class Fn>
void dispatch_states(int states, Fn&& fn) {
  switch (states) {
    case 4:
      fn.template operator()<4>();
      break;
    case 20:
      fn.template operator()<20>();
      break;
    default:
      throw std::logic_error("unsupported state count " +
                             std::to_string(states));
  }
}

}  // namespace

/// Per-partition engine state: model, encoded tips, CLVs, NR sumtable.
struct Engine::PartData {
  const CompressedPartition* src = nullptr;
  PartitionModel model;
  std::size_t patterns = 0;
  int states = 4;
  int cats = 4;
  std::vector<double> weights;

  // Tip encoding: per pattern, a code into `indicators` (rows of S doubles,
  // one per distinct state mask occurring in this partition).
  std::vector<std::vector<std::uint16_t>> tip_codes;  // [tip node][pattern]
  AlignedDoubleVec indicators;
  std::size_t n_codes = 0;  // rows in `indicators`

  // Cached tip lookup tables for the specialized kernels: per tip-adjacent
  // edge, a small LRU of tables keyed on (model epoch, branch length) — the
  // content depends on nothing else, so branch-length sweeps that revisit a
  // handful of candidate lengths (and cherry edges whose endpoints
  // alternate) hit the cache instead of rebuilding. The sym table is per
  // partition, keyed on the model epoch alone.
  struct TipTableEntry {
    std::uint32_t epoch = 0;
    double blen = -1.0;
    std::uint64_t last_used = 0;
    AlignedDoubleVec table;
  };
  std::vector<std::array<TipTableEntry, kTipTableLruSize>> tip_tables;
  TipTableEntry sym_table;

  // Inner-node CLVs and scale counts, indexed by (node - tip_count).
  std::vector<AlignedDoubleVec> clv;
  std::vector<std::vector<std::int32_t>> scale;

  // NR sumtable at the current root edge: [pattern][cat][state].
  AlignedDoubleVec sumtable;

  explicit PartData(PartitionModel m) : model(std::move(m)) {}

  std::size_t clv_stride() const {
    return static_cast<std::size_t>(cats) * static_cast<std::size_t>(states);
  }
};

/// One parallel command: a traversal op list optionally fused with an
/// evaluation, a sumtable pass, or an NR derivative pass.
struct Engine::Command {
  struct Op {
    NodeId node = kNoId;
    EdgeId toward = kNoId;  // the orientation this op establishes
    NodeId c1 = kNoId, c2 = kNoId;
    EdgeId e1 = kNoId, e2 = kNoId;
    std::vector<int> parts;
    // Offsets into `pmats` for each listed partition (child 1 and child 2).
    // `pmats` and `pmats_t` are filled in lockstep, so the same offsets
    // address the transposed matrices.
    std::vector<std::size_t> pmat1, pmat2;
    // Tip lookup tables per listed partition (nullptr for inner children).
    std::vector<const double*> tt1, tt2;
  };
  std::vector<Op> ops;

  bool do_eval = false;
  EdgeId eval_edge = kNoId;
  std::vector<int> eval_parts;
  std::vector<std::size_t> eval_pmat;
  std::vector<const double*> eval_tt;  // cv-side tip table per listed part

  bool do_sumtable = false;
  std::vector<int> sum_parts;
  std::vector<std::size_t> sum_symt;       // transposed sym offsets (symt)
  std::vector<const double*> sum_ttu, sum_ttv;  // sym tip tables

  bool do_sites = false;
  int sites_part = -1;
  std::size_t sites_pmat = 0;
  const double* sites_tt = nullptr;
  double* sites_out = nullptr;

  bool do_nr = false;
  std::vector<int> nr_parts;
  // Per listed partition: offsets into `scratch` for exp(lam*r*b) and lam*r
  // tables, each cats*states doubles.
  std::vector<std::size_t> nr_exp, nr_lam;

  AlignedDoubleVec pmats;    // concatenated transition matrices (row-major)
  AlignedDoubleVec pmats_t;  // same matrices transposed (lockstep offsets)
  AlignedDoubleVec symt;     // transposed sym transforms (sum_symt offsets)
  AlignedDoubleVec scratch;  // NR tables
};

Engine::Engine(const CompressedAlignment& aln, Tree tree,
               std::vector<PartitionModel> models, EngineOptions opts)
    : aln_(aln),
      tree_(std::move(tree)),
      lengths_(BranchLengths::from_tree(tree_, static_cast<int>(aln.partition_count()),
                                        !opts.unlinked_branch_lengths)) {
  if (models.size() != aln.partition_count())
    throw std::invalid_argument("need one model per partition");
  if (static_cast<std::size_t>(tree_.tip_count()) != aln.taxon_count())
    throw std::invalid_argument("tree/alignment taxon count mismatch");

  for (std::size_t p = 0; p < models.size(); ++p) {
    const auto& cp = aln.partitions[p];
    if (models[p].model().states() != cp.states())
      throw std::invalid_argument("model/partition state count mismatch for '" +
                                  cp.name + "'");
    auto pd = std::make_unique<PartData>(std::move(models[p]));
    pd->src = &cp;
    pd->patterns = cp.pattern_count;
    pd->states = cp.states();
    pd->cats = pd->model.gamma_categories();
    pd->weights = cp.weights;
    parts_.push_back(std::move(pd));
  }

  // Map tree tips to alignment taxa by name.
  tip_of_taxon_.assign(aln.taxon_count(), kNoId);
  std::unordered_map<std::string, NodeId> tip_by_label;
  for (NodeId t = 0; t < tree_.tip_count(); ++t)
    tip_by_label[tree_.label(t)] = t;
  if (tip_by_label.size() != aln.taxon_count())
    throw std::invalid_argument("duplicate tree tip labels");
  for (std::size_t x = 0; x < aln.taxon_count(); ++x) {
    auto it = tip_by_label.find(aln.taxon_names[x]);
    if (it == tip_by_label.end())
      throw std::invalid_argument("taxon '" + aln.taxon_names[x] +
                                  "' missing from tree");
    tip_of_taxon_[x] = it->second;
  }

  build_tip_data();

  use_generic_ = opts.use_generic_kernels;
  sched_strategy_ = opts.schedule;

  // Allocate CLVs, scale counts, and tracking structures.
  const int inner_count = tree_.node_count() - tree_.tip_count();
  for (auto& pd : parts_) {
    pd->tip_tables.resize(static_cast<std::size_t>(tree_.edge_count()));
    pd->clv.resize(static_cast<std::size_t>(inner_count));
    pd->scale.resize(static_cast<std::size_t>(inner_count));
    for (int i = 0; i < inner_count; ++i) {
      pd->clv[static_cast<std::size_t>(i)].assign(
          pd->patterns * pd->clv_stride(), 0.0);
      pd->scale[static_cast<std::size_t>(i)].assign(pd->patterns, 0);
    }
    pd->sumtable.assign(pd->patterns * pd->clv_stride(), 0.0);
  }
  orient_.assign(static_cast<std::size_t>(tree_.node_count()), kNoId);
  model_epoch_.assign(parts_.size(), 1);
  clv_epoch_.assign(static_cast<std::size_t>(inner_count),
                    std::vector<std::uint32_t>(parts_.size(), 0));
  last_lnl_.assign(parts_.size(), 0.0);

  team_ = std::make_unique<ThreadTeam>(opts.threads, opts.instrument,
                                       opts.instrument_cpu_time);
  red_stride_ = (parts_.size() + 7) / 8 * 8;
  const std::size_t red_size = static_cast<std::size_t>(opts.threads) * red_stride_;
  red_lnl_.assign(red_size, 0.0);
  red_d1_.assign(red_size, 0.0);
  red_d2_.assign(red_size, 0.0);
}

Engine::~Engine() = default;

void Engine::build_tip_data() {
  for (auto& pd : parts_) {
    const CompressedPartition& cp = *pd->src;
    const int s = pd->states;
    // Catalog of distinct state masks in this partition.
    std::unordered_map<StateMask, std::uint16_t> code_of;
    pd->tip_codes.assign(static_cast<std::size_t>(tree_.tip_count()), {});
    std::vector<StateMask> catalog;
    for (std::size_t x = 0; x < aln_.taxon_count(); ++x) {
      const NodeId tip = tip_of_taxon_[x];
      auto& codes = pd->tip_codes[static_cast<std::size_t>(tip)];
      codes.resize(pd->patterns);
      for (std::size_t i = 0; i < pd->patterns; ++i) {
        const StateMask m = cp.tip_states[x][i];
        auto [it, inserted] =
            code_of.emplace(m, static_cast<std::uint16_t>(catalog.size()));
        if (inserted) catalog.push_back(m);
        codes[i] = it->second;
      }
    }
    if (catalog.size() > 65535)
      throw std::runtime_error("too many distinct state masks");
    pd->n_codes = catalog.size();
    pd->indicators.assign(catalog.size() * static_cast<std::size_t>(s), 0.0);
    for (std::size_t c = 0; c < catalog.size(); ++c)
      for (int j = 0; j < s; ++j)
        if (catalog[c] & (StateMask{1} << j))
          pd->indicators[c * static_cast<std::size_t>(s) +
                         static_cast<std::size_t>(j)] = 1.0;
  }
}

std::size_t Engine::pattern_count(int p) const {
  return parts_[static_cast<std::size_t>(p)]->patterns;
}

std::size_t Engine::total_patterns() const {
  std::size_t n = 0;
  for (const auto& pd : parts_) n += pd->patterns;
  return n;
}

const PartitionModel& Engine::model(int p) const {
  return parts_[static_cast<std::size_t>(p)]->model;
}

PartitionModel& Engine::model(int p) {
  return parts_[static_cast<std::size_t>(p)]->model;
}

void Engine::invalidate_partition(int p) {
  ++model_epoch_[static_cast<std::size_t>(p)];
  sumtable_valid_ = false;
}

void Engine::invalidate_node(NodeId v) {
  if (!tree_.is_tip(v)) orient_[static_cast<std::size_t>(v)] = kNoId;
  sumtable_valid_ = false;
}

void Engine::invalidate_all() {
  std::fill(orient_.begin(), orient_.end(), kNoId);
  sumtable_valid_ = false;
}

const double* Engine::tip_table_for(int p, EdgeId e, const double* pmat) {
  PartData& pd = *parts_[static_cast<std::size_t>(p)];
  auto& lru = pd.tip_tables[static_cast<std::size_t>(e)];
  const double b = lengths_.get(e, p);
  const std::uint32_t epoch = model_epoch_[static_cast<std::size_t>(p)];
  PartData::TipTableEntry* victim = &lru[0];
  for (auto& ent : lru) {
    if (!ent.table.empty() && ent.epoch == epoch && ent.blen == b) {
      ent.last_used = ++tip_clock_;
      ++stats_.tip_table_hits;
      return ent.table.data();
    }
    if (ent.table.empty()) {
      victim = &ent;  // prefer an unused slot over evicting
      break;
    }
    if (ent.last_used < victim->last_used) victim = &ent;
  }
  victim->table.resize(pd.n_codes * pd.clv_stride());
  dispatch_states(pd.states, [&]<int S>() {
    kernel::build_tip_table<S>(pmat, pd.cats, pd.indicators.data(),
                               pd.n_codes, victim->table.data());
  });
  victim->epoch = epoch;
  victim->blen = b;
  victim->last_used = ++tip_clock_;
  ++stats_.tip_table_rebuilds;
  return victim->table.data();
}

const double* Engine::sym_table_for(int p) {
  PartData& pd = *parts_[static_cast<std::size_t>(p)];
  auto& ent = pd.sym_table;
  const std::uint32_t epoch = model_epoch_[static_cast<std::size_t>(p)];
  if (ent.epoch != epoch || ent.table.empty()) {
    ent.table.resize(pd.n_codes * static_cast<std::size_t>(pd.states));
    dispatch_states(pd.states, [&]<int S>() {
      kernel::build_sym_tip_table<S>(pd.model.model().sym_transform().data(),
                                     pd.indicators.data(), pd.n_codes,
                                     ent.table.data());
    });
    ent.epoch = epoch;
  }
  return ent.table.data();
}

const WorkSchedule& Engine::schedule() {
  if (sched_dirty_) {
    // Measured weights are seconds-per-pattern — a different unit from the
    // static states^2 x cats model — so they are only usable if EVERY
    // partition has one (a partition whose timed reps landed below clock
    // granularity would otherwise dwarf, or be dwarfed by, the rest).
    bool use_measured = sched_strategy_ == SchedulingStrategy::kMeasured &&
                        measured_cost_.size() == parts_.size();
    if (use_measured)
      for (double c : measured_cost_)
        if (!(c > 0.0)) {
          use_measured = false;
          break;
        }
    std::vector<PartitionShape> shapes(parts_.size());
    for (std::size_t p = 0; p < parts_.size(); ++p) {
      const PartData& pd = *parts_[p];
      PartitionShape& sh = shapes[p];
      sh.patterns = pd.patterns;
      sh.states = pd.states;
      sh.cats = pd.cats;
      // Fold the observed seconds-per-pattern into the weight so that
      // cost_per_pattern() == the measurement; without a complete
      // calibration every partition keeps the static model.
      if (use_measured)
        sh.weight = measured_cost_[p] / (static_cast<double>(pd.states) *
                                        static_cast<double>(pd.cats));
    }
    sched_ = WorkSchedule::build(sched_strategy_, team_->size(), shapes);
    sched_dirty_ = false;
  }
  return sched_;
}

void Engine::set_scheduling_strategy(SchedulingStrategy s) {
  if (s == sched_strategy_) return;
  sched_strategy_ = s;
  sched_dirty_ = true;
}

void Engine::calibrate_schedule(EdgeId edge, int reps) {
  if (!team_->instrumented() || reps < 1) return;
  measured_cost_.assign(parts_.size(), 0.0);
  for (int p = 0; p < partition_count(); ++p) {
    const std::vector<int> one{static_cast<int>(p)};
    // Warm-up evaluation brings CLVs, tables and caches up to date so the
    // timed repetitions measure the steady-state evaluate cost.
    loglikelihood(edge, one);
    const double before = team_->stats().total_work_seconds;
    for (int r = 0; r < reps; ++r) loglikelihood(edge, one);
    const double dt = team_->stats().total_work_seconds - before;
    const auto n = parts_[static_cast<std::size_t>(p)]->patterns;
    if (n > 0 && dt > 0.0)
      measured_cost_[static_cast<std::size_t>(p)] =
          dt / (static_cast<double>(reps) * static_cast<double>(n));
  }
  sched_dirty_ = true;
}

const double* Engine::prepare_edge_tables(Command& cmd, int p, std::size_t off,
                                          EdgeId e, NodeId endpoint) {
  if (use_generic_) return nullptr;
  // Keep pmats/pmats_t offsets interchangeable. A tip endpoint consumes its
  // lookup table instead of the transposed matrix, so only inner endpoints
  // need the transpose.
  cmd.pmats_t.resize(cmd.pmats.size());
  if (tree_.is_tip(endpoint))
    return tip_table_for(p, e, cmd.pmats.data() + off);
  const PartData& pd = *parts_[static_cast<std::size_t>(p)];
  dispatch_states(pd.states, [&]<int S>() {
    kernel::transpose_pmats<S>(cmd.pmats.data() + off, pd.cats,
                               cmd.pmats_t.data() + off);
  });
  return nullptr;
}

kernel::ChildView Engine::child_view(int p, NodeId v) const {
  const PartData& pd = *parts_[static_cast<std::size_t>(p)];
  kernel::ChildView cv;
  if (tree_.is_tip(v)) {
    cv.codes = pd.tip_codes[static_cast<std::size_t>(v)].data();
    cv.indicators = pd.indicators.data();
  } else {
    const std::size_t inner = static_cast<std::size_t>(v - tree_.tip_count());
    cv.clv = pd.clv[inner].data();
    cv.scale = pd.scale[inner].data();
  }
  return cv;
}

void Engine::ensure_clv(NodeId v, EdgeId via, bool need_all,
                        const std::vector<int>& scope, Command& cmd) {
  if (tree_.is_tip(v)) return;
  const std::size_t inner = static_cast<std::size_t>(v - tree_.tip_count());
  const bool flip = orient_[static_cast<std::size_t>(v)] != via;

  std::vector<int> rec;
  if (flip) {
    rec.resize(parts_.size());
    for (std::size_t p = 0; p < parts_.size(); ++p) rec[p] = static_cast<int>(p);
  } else {
    const auto consider = [&](int p) {
      if (clv_epoch_[inner][static_cast<std::size_t>(p)] !=
          model_epoch_[static_cast<std::size_t>(p)])
        rec.push_back(p);
    };
    if (need_all) {
      for (std::size_t p = 0; p < parts_.size(); ++p)
        consider(static_cast<int>(p));
    } else {
      for (int p : scope) consider(p);
    }
  }
  if (rec.empty()) return;

  const bool rec_all = rec.size() == parts_.size();
  for (EdgeId e : tree_.edges_of(v)) {
    if (e == via) continue;
    ensure_clv(tree_.other_end(e, v), e, rec_all, rec, cmd);
  }
  add_newview_op(v, via, rec, cmd);
}

void Engine::add_newview_op(NodeId v, EdgeId via, const std::vector<int>& parts,
                            Command& cmd) {
  Command::Op op;
  op.node = v;
  op.toward = via;
  for (EdgeId e : tree_.edges_of(v)) {
    if (e == via) continue;
    if (op.c1 == kNoId) {
      op.c1 = tree_.other_end(e, v);
      op.e1 = e;
    } else {
      op.c2 = tree_.other_end(e, v);
      op.e2 = e;
    }
  }
  op.parts = parts;

  // Precompute the per-category transition matrices for both child edges
  // (row-major + transposed), and refresh tip lookup tables for tip children.
  Matrix pm;
  for (int p : parts) {
    const PartData& pd = *parts_[static_cast<std::size_t>(p)];
    const int s = pd.states;
    const auto& rates = pd.model.category_rates();
    for (int child = 0; child < 2; ++child) {
      const EdgeId e = child == 0 ? op.e1 : op.e2;
      const NodeId cn = child == 0 ? op.c1 : op.c2;
      const double b = lengths_.get(e, p);
      const std::size_t off = cmd.pmats.size();
      (child == 0 ? op.pmat1 : op.pmat2).push_back(off);
      for (int c = 0; c < pd.cats; ++c) {
        pd.model.model().transition_matrix(b * rates[static_cast<std::size_t>(c)],
                                           pm);
        cmd.pmats.insert(cmd.pmats.end(), pm.data(),
                         pm.data() + static_cast<std::size_t>(s) * s);
      }
      (child == 0 ? op.tt1 : op.tt2)
          .push_back(prepare_edge_tables(cmd, p, off, e, cn));
    }
  }
  cmd.ops.push_back(std::move(op));
}

void Engine::execute(Command& cmd) {
  ++stats_.commands;
  for (const auto& op : cmd.ops) stats_.newview_ops += op.parts.size();
  if (cmd.do_eval) stats_.evaluations += cmd.eval_parts.size();
  if (cmd.do_nr) stats_.nr_iterations += cmd.nr_parts.size();

  const int tips = tree_.tip_count();
  // Resolve the cached work assignment on the master before broadcasting;
  // inside the command every thread reads it concurrently (const access).
  const WorkSchedule& sched = schedule();

  // The cost-balancing strategies split the *concatenated* pattern sequence,
  // so a partition whose cost share is below 1/T belongs entirely to one
  // thread — correct for multi-partition commands, but a command scoped to
  // a single partition (oldPAR-style model/branch phases) would then run
  // serially. Per-pattern cost is uniform within one partition, so such
  // commands use an even block split instead. Assignments may differ freely
  // between commands (each command ends in a full barrier); only ops
  // *within* a command must share one assignment, which both paths honor.
  int solo_part = -1;
  if (sched.strategy() != SchedulingStrategy::kCyclic &&
      sched.strategy() != SchedulingStrategy::kBlock && team_->size() > 1) {
    const auto fold = [&](int p) {
      if (solo_part == -1 || solo_part == p) solo_part = p;
      else solo_part = -2;  // more than one partition involved
    };
    for (const auto& op : cmd.ops)
      for (int p : op.parts) fold(p);
    for (int p : cmd.eval_parts) fold(p);
    for (int p : cmd.sum_parts) fold(p);
    for (int p : cmd.nr_parts) fold(p);
    if (cmd.do_sites) fold(cmd.sites_part);
    if (solo_part < 0) solo_part = -1;
  }
  const std::size_t T = static_cast<std::size_t>(team_->size());

  team_->run([&](int tid) {
    // Span lookup for this command (see solo_part above). `tmp` holds the
    // synthesized block span, which lives for the duration of the use.
    WorkSpan tmp;
    const auto spans_of = [&](int p) -> std::span<const WorkSpan> {
      if (p != solo_part) return sched.spans(tid, p);
      tmp = block_span(p, parts_[static_cast<std::size_t>(p)]->patterns, tid,
                       static_cast<int>(T));
      if (tmp.begin >= tmp.end) return {};
      return {&tmp, 1};
    };
    // 1. Traversal ops, in order (no intra-traversal barrier needed:
    //    pattern i of a parent CLV depends only on pattern i of the child
    //    CLVs, and a thread owns the same spans of a partition for every
    //    op of the command).
    for (const auto& op : cmd.ops) {
      const std::size_t inner = static_cast<std::size_t>(op.node - tips);
      for (std::size_t k = 0; k < op.parts.size(); ++k) {
        const int p = op.parts[k];
        PartData& pd = *parts_[static_cast<std::size_t>(p)];
        kernel::ChildView v1 = child_view(p, op.c1);
        kernel::ChildView v2 = child_view(p, op.c2);
        if (!use_generic_) {
          v1.tip_table = op.tt1[k];
          v2.tip_table = op.tt2[k];
        }
        dispatch_states(pd.states, [&]<int S>() {
          for (const WorkSpan& s : spans_of(p)) {
            if (use_generic_) {
              kernel::newview_slice<S>(s.begin, s.end, s.step, pd.cats, v1,
                                       v2, cmd.pmats.data() + op.pmat1[k],
                                       cmd.pmats.data() + op.pmat2[k],
                                       pd.clv[inner].data(),
                                       pd.scale[inner].data());
            } else {
              kernel::newview_spec<S>(s.begin, s.end, s.step, pd.cats, v1, v2,
                                      cmd.pmats.data() + op.pmat1[k],
                                      cmd.pmats.data() + op.pmat2[k],
                                      cmd.pmats_t.data() + op.pmat1[k],
                                      cmd.pmats_t.data() + op.pmat2[k],
                                      pd.clv[inner].data(),
                                      pd.scale[inner].data());
            }
          }
        });
      }
    }

    // 2. Optional fused evaluation at the root edge.
    if (cmd.do_eval) {
      const NodeId u = tree_.edge(cmd.eval_edge).a;
      const NodeId v = tree_.edge(cmd.eval_edge).b;
      for (std::size_t k = 0; k < cmd.eval_parts.size(); ++k) {
        const int p = cmd.eval_parts[k];
        PartData& pd = *parts_[static_cast<std::size_t>(p)];
        const kernel::ChildView vu = child_view(p, u);
        kernel::ChildView vv = child_view(p, v);
        if (!use_generic_) vv.tip_table = cmd.eval_tt[k];
        double partial = 0.0;
        dispatch_states(pd.states, [&]<int S>() {
          for (const WorkSpan& s : spans_of(p)) {
            if (use_generic_) {
              partial += kernel::evaluate_slice<S>(
                  s.begin, s.end, s.step, pd.cats, vu, vv,
                  cmd.pmats.data() + cmd.eval_pmat[k],
                  pd.model.model().freqs().data(), pd.weights.data());
            } else {
              partial += kernel::evaluate_spec<S>(
                  s.begin, s.end, s.step, pd.cats, vu, vv,
                  cmd.pmats.data() + cmd.eval_pmat[k],
                  cmd.pmats_t.data() + cmd.eval_pmat[k],
                  pd.model.model().freqs().data(), pd.weights.data());
            }
          }
        });
        // Threads without spans of p still publish their (zero) partial.
        red_lnl_[static_cast<std::size_t>(tid) * red_stride_ +
                 static_cast<std::size_t>(p)] = partial;
      }
    }

    // 2b. Optional per-site evaluation for one partition.
    if (cmd.do_sites) {
      const NodeId u = tree_.edge(cmd.eval_edge).a;
      const NodeId v = tree_.edge(cmd.eval_edge).b;
      const int p = cmd.sites_part;
      PartData& pd = *parts_[static_cast<std::size_t>(p)];
      const kernel::ChildView vu = child_view(p, u);
      kernel::ChildView vv = child_view(p, v);
      if (!use_generic_) vv.tip_table = cmd.sites_tt;
      dispatch_states(pd.states, [&]<int S>() {
        for (const WorkSpan& s : spans_of(p)) {
          if (use_generic_) {
            kernel::evaluate_sites_slice<S>(
                s.begin, s.end, s.step, pd.cats, vu, vv,
                cmd.pmats.data() + cmd.sites_pmat,
                pd.model.model().freqs().data(), cmd.sites_out);
          } else {
            kernel::evaluate_sites_spec<S>(
                s.begin, s.end, s.step, pd.cats, vu, vv,
                cmd.pmats.data() + cmd.sites_pmat,
                cmd.pmats_t.data() + cmd.sites_pmat,
                pd.model.model().freqs().data(), cmd.sites_out);
          }
        }
      });
    }

    // 3. Optional sumtable pass.
    if (cmd.do_sumtable) {
      const NodeId u = tree_.edge(root_edge_).a;
      const NodeId v = tree_.edge(root_edge_).b;
      for (std::size_t k = 0; k < cmd.sum_parts.size(); ++k) {
        const int p = cmd.sum_parts[k];
        PartData& pd = *parts_[static_cast<std::size_t>(p)];
        kernel::ChildView vu = child_view(p, u);
        kernel::ChildView vv = child_view(p, v);
        if (!use_generic_) {
          vu.tip_table = cmd.sum_ttu[k];
          vv.tip_table = cmd.sum_ttv[k];
        }
        dispatch_states(pd.states, [&]<int S>() {
          for (const WorkSpan& s : spans_of(p)) {
            if (use_generic_) {
              kernel::sumtable_slice<S>(
                  s.begin, s.end, s.step, pd.cats, vu, vv,
                  pd.model.model().sym_transform().data(),
                  pd.sumtable.data());
            } else {
              kernel::sumtable_spec<S>(
                  s.begin, s.end, s.step, pd.cats, vu, vv,
                  pd.model.model().sym_transform().data(),
                  cmd.symt.data() + cmd.sum_symt[k], pd.sumtable.data());
            }
          }
        });
      }
    }

    // 4. Optional NR derivative pass.
    if (cmd.do_nr) {
      for (std::size_t k = 0; k < cmd.nr_parts.size(); ++k) {
        const int p = cmd.nr_parts[k];
        PartData& pd = *parts_[static_cast<std::size_t>(p)];
        double d1 = 0.0, d2 = 0.0;
        dispatch_states(pd.states, [&]<int S>() {
          for (const WorkSpan& s : spans_of(p)) {
            double s1 = 0.0, s2 = 0.0;
            if (use_generic_)
              kernel::nr_slice<S>(s.begin, s.end, s.step, pd.cats,
                                  pd.sumtable.data(),
                                  cmd.scratch.data() + cmd.nr_exp[k],
                                  cmd.scratch.data() + cmd.nr_lam[k],
                                  pd.weights.data(), &s1, &s2);
            else
              kernel::nr_spec<S>(s.begin, s.end, s.step, pd.cats,
                                 pd.sumtable.data(),
                                 cmd.scratch.data() + cmd.nr_exp[k],
                                 cmd.scratch.data() + cmd.nr_lam[k],
                                 pd.weights.data(), &s1, &s2);
            d1 += s1;
            d2 += s2;
          }
        });
        red_d1_[static_cast<std::size_t>(tid) * red_stride_ +
                static_cast<std::size_t>(p)] = d1;
        red_d2_[static_cast<std::size_t>(tid) * red_stride_ +
                static_cast<std::size_t>(p)] = d2;
      }
    }
  });

  // Post-run bookkeeping: orientations and epochs for executed ops.
  for (const auto& op : cmd.ops) {
    orient_[static_cast<std::size_t>(op.node)] = op.toward;
    const std::size_t inner = static_cast<std::size_t>(op.node - tips);
    for (int p : op.parts)
      clv_epoch_[inner][static_cast<std::size_t>(p)] =
          model_epoch_[static_cast<std::size_t>(p)];
  }
}

double Engine::loglikelihood(EdgeId edge) {
  std::vector<int> all(parts_.size());
  for (std::size_t p = 0; p < parts_.size(); ++p) all[p] = static_cast<int>(p);
  return loglikelihood(edge, all);
}

double Engine::loglikelihood(EdgeId edge, const std::vector<int>& partitions) {
  Command cmd;
  const NodeId u = tree_.edge(edge).a;
  const NodeId v = tree_.edge(edge).b;
  ensure_clv(u, edge, false, partitions, cmd);
  ensure_clv(v, edge, false, partitions, cmd);

  cmd.do_eval = true;
  cmd.eval_edge = edge;
  cmd.eval_parts = partitions;
  Matrix pm;
  for (int p : partitions) {
    const PartData& pd = *parts_[static_cast<std::size_t>(p)];
    const auto& rates = pd.model.category_rates();
    const double b = lengths_.get(edge, p);
    const std::size_t off = cmd.pmats.size();
    cmd.eval_pmat.push_back(off);
    for (int c = 0; c < pd.cats; ++c) {
      pd.model.model().transition_matrix(b * rates[static_cast<std::size_t>(c)],
                                         pm);
      cmd.pmats.insert(cmd.pmats.end(), pm.data(),
                       pm.data() + static_cast<std::size_t>(pd.states) *
                                       static_cast<std::size_t>(pd.states));
    }
    // The root-edge matrix applies to the v side; a tip there gets a table.
    cmd.eval_tt.push_back(prepare_edge_tables(cmd, p, off, edge, v));
  }
  execute(cmd);

  double total = 0.0;
  for (int p : partitions) {
    double lnl = 0.0;
    for (int t = 0; t < team_->size(); ++t)
      lnl += red_lnl_[static_cast<std::size_t>(t) * red_stride_ +
                      static_cast<std::size_t>(p)];
    last_lnl_[static_cast<std::size_t>(p)] = lnl;
    total += lnl;
  }
  root_edge_ = edge;
  sumtable_valid_ = false;
  return total;
}

std::vector<double> Engine::site_loglikelihoods(EdgeId edge, int p) {
  Command cmd;
  const NodeId u = tree_.edge(edge).a;
  const NodeId v = tree_.edge(edge).b;
  const std::vector<int> one{p};
  ensure_clv(u, edge, false, one, cmd);
  ensure_clv(v, edge, false, one, cmd);

  const PartData& pd = *parts_[static_cast<std::size_t>(p)];
  std::vector<double> out(pd.patterns);
  cmd.do_sites = true;
  cmd.eval_edge = edge;
  cmd.sites_part = p;
  cmd.sites_out = out.data();
  Matrix pm;
  const auto& rates = pd.model.category_rates();
  const double b = lengths_.get(edge, p);
  cmd.sites_pmat = cmd.pmats.size();
  for (int c = 0; c < pd.cats; ++c) {
    pd.model.model().transition_matrix(b * rates[static_cast<std::size_t>(c)],
                                       pm);
    cmd.pmats.insert(cmd.pmats.end(), pm.data(),
                     pm.data() + static_cast<std::size_t>(pd.states) *
                                     static_cast<std::size_t>(pd.states));
  }
  cmd.sites_tt = prepare_edge_tables(cmd, p, cmd.sites_pmat, edge, v);
  execute(cmd);
  root_edge_ = edge;
  sumtable_valid_ = false;
  return out;
}

void Engine::prepare_root(EdgeId edge) {
  Command cmd;
  std::vector<int> all(parts_.size());
  for (std::size_t p = 0; p < parts_.size(); ++p) all[p] = static_cast<int>(p);
  const NodeId u = tree_.edge(edge).a;
  const NodeId v = tree_.edge(edge).b;
  ensure_clv(u, edge, true, all, cmd);
  ensure_clv(v, edge, true, all, cmd);
  if (!cmd.ops.empty()) execute(cmd);
  root_edge_ = edge;
  sumtable_valid_ = false;
}

void Engine::compute_sumtable(const std::vector<int>& partitions) {
  if (root_edge_ == kNoId)
    throw std::logic_error("compute_sumtable: no root edge prepared");
  Command cmd;
  const NodeId u = tree_.edge(root_edge_).a;
  const NodeId v = tree_.edge(root_edge_).b;
  ensure_clv(u, root_edge_, false, partitions, cmd);
  ensure_clv(v, root_edge_, false, partitions, cmd);
  cmd.do_sumtable = true;
  cmd.sum_parts = partitions;
  for (int p : partitions) {
    const PartData& pd = *parts_[static_cast<std::size_t>(p)];
    if (!use_generic_) {
      const std::size_t off = cmd.symt.size();
      cmd.sum_symt.push_back(off);
      cmd.symt.resize(off + static_cast<std::size_t>(pd.states) *
                                static_cast<std::size_t>(pd.states));
      dispatch_states(pd.states, [&]<int S>() {
        kernel::transpose_pmats<S>(pd.model.model().sym_transform().data(), 1,
                                   cmd.symt.data() + off);
      });
    } else {
      cmd.sum_symt.push_back(0);
    }
    cmd.sum_ttu.push_back(!use_generic_ && tree_.is_tip(u) ? sym_table_for(p)
                                                           : nullptr);
    cmd.sum_ttv.push_back(!use_generic_ && tree_.is_tip(v) ? sym_table_for(p)
                                                           : nullptr);
  }
  execute(cmd);
  sumtable_valid_ = true;
}

void Engine::nr_derivatives(const std::vector<int>& partitions,
                            std::span<const double> lens, std::span<double> d1,
                            std::span<double> d2) {
  if (!sumtable_valid_)
    throw std::logic_error("nr_derivatives: sumtable not computed");
  if (lens.size() != partitions.size() || d1.size() != partitions.size() ||
      d2.size() != partitions.size())
    throw std::invalid_argument("nr_derivatives: size mismatch");

  Command cmd;
  cmd.do_nr = true;
  cmd.nr_parts = partitions;
  for (std::size_t k = 0; k < partitions.size(); ++k) {
    const PartData& pd = *parts_[static_cast<std::size_t>(partitions[k])];
    const auto& rates = pd.model.category_rates();
    const auto& lambda = pd.model.model().eigenvalues();
    const double b = std::clamp(lens[k], kBranchMin, kBranchMax);
    cmd.nr_exp.push_back(cmd.scratch.size());
    for (int c = 0; c < pd.cats; ++c)
      for (int s = 0; s < pd.states; ++s)
        cmd.scratch.push_back(
            std::exp(lambda[static_cast<std::size_t>(s)] *
                     rates[static_cast<std::size_t>(c)] * b));
    cmd.nr_lam.push_back(cmd.scratch.size());
    for (int c = 0; c < pd.cats; ++c)
      for (int s = 0; s < pd.states; ++s)
        cmd.scratch.push_back(lambda[static_cast<std::size_t>(s)] *
                              rates[static_cast<std::size_t>(c)]);
  }
  execute(cmd);

  for (std::size_t k = 0; k < partitions.size(); ++k) {
    const int p = partitions[k];
    double s1 = 0.0, s2 = 0.0;
    for (int t = 0; t < team_->size(); ++t) {
      s1 += red_d1_[static_cast<std::size_t>(t) * red_stride_ +
                    static_cast<std::size_t>(p)];
      s2 += red_d2_[static_cast<std::size_t>(t) * red_stride_ +
                    static_cast<std::size_t>(p)];
    }
    d1[k] = s1;
    d2[k] = s2;
  }
}

void Engine::reset_stats() {
  stats_ = EngineStats{};
  team_->reset_stats();
}

void Engine::sync_tree_lengths() {
  for (EdgeId e = 0; e < tree_.edge_count(); ++e)
    tree_.set_length(e, lengths_.mean(e));
}

}  // namespace plk
