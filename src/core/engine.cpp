#include "core/engine.hpp"

#include <stdexcept>

namespace plk {

Engine::Engine(const CompressedAlignment& aln, Tree tree,
               std::vector<PartitionModel> models, EngineOptions opts)
    : owned_core_(
          std::make_unique<EngineCore>(aln, std::move(models), opts)),
      owned_ctx_(std::make_unique<EvalContext>(*owned_core_, std::move(tree))),
      core_(owned_core_.get()),
      ctx_(owned_ctx_.get()) {}

Engine::Engine(EngineCore& core, EvalContext& ctx)
    : core_(&core), ctx_(&ctx) {
  if (&ctx.core() != &core)
    throw std::invalid_argument("Engine view: context belongs to another core");
}

Engine::~Engine() = default;

}  // namespace plk
