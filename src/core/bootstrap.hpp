// Bootstrap resampling and bipartition support.
//
// The non-parametric bootstrap (Felsenstein 1985 — the paper's [6]) draws,
// per partition, `site_count` columns with replacement; in the pattern-
// compressed representation this is simply a multinomial resampling of the
// pattern *weights*, so a replicate costs no extra memory for tip data.
// Replicate searches yield a set of trees; the support of each internal
// branch of a reference tree (e.g. the best ML tree) is the fraction of
// replicate trees containing the same bipartition — RAxML's "-f b" drawing.
#pragma once

#include <map>
#include <vector>

#include "bio/patterns.hpp"
#include "core/engine_core.hpp"
#include "search/search.hpp"
#include "tree/tree.hpp"
#include "util/rng.hpp"

namespace plk {

/// Resampled pattern weights of one bootstrap replicate, one vector per
/// partition (each preserving its partition's total site count). This is
/// all a replicate *is* in the pattern-compressed representation: feed the
/// weights to EvalContext::set_pattern_weights and share everything else —
/// tip data, thread team, schedules — through one EngineCore instead of
/// copying the alignment per replicate.
std::vector<std::vector<double>> bootstrap_weights(
    const CompressedAlignment& aln, Rng& rng);

/// A bootstrap replicate as a standalone alignment copy: same patterns,
/// multinomially resampled weights. Kept for one-engine-per-replicate
/// flows; replicate-heavy runs should prefer bootstrap_weights() + a shared
/// EngineCore (see bootstrap_trees()).
CompressedAlignment bootstrap_replicate(const CompressedAlignment& aln,
                                        Rng& rng);

/// Bootstrap replicate trees through a shared EngineCore (the batched
/// replacement for the one-engine-per-replicate loop): one EvalContext per
/// replicate carrying resampled weights, all starting from `reference`
/// (rapid-bootstrap style). Branch lengths are first smoothed for every
/// replicate in lockstep through the core's batched submit()/wait() API —
/// one parallel region per optimization step for the WHOLE set — and each
/// replicate then runs its (inherently sequential) SPR search through an
/// Engine facade view, still sharing the core's tip data, tip-table LRUs,
/// thread team, and schedule. Returns one tree per replicate.
std::vector<Tree> bootstrap_trees(EngineCore& core, const Tree& reference,
                                  int replicates, Rng& rng,
                                  const SearchOptions& opts);

/// For each *internal* edge of `reference`, the fraction of `replicates`
/// that contain the same tip bipartition. Trees must share tip ids.
std::map<EdgeId, double> bipartition_support(
    const Tree& reference, const std::vector<Tree>& replicates);

/// Serialize `tree` to Newick with integer support values (0-100) as inner
/// node labels, the standard way phylogenetics tools exchange support.
std::string write_newick_with_support(
    const Tree& tree, const std::map<EdgeId, double>& support,
    int precision = 6);

}  // namespace plk
