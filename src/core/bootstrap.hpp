// Bootstrap resampling and bipartition support.
//
// The non-parametric bootstrap (Felsenstein 1985 — the paper's [6]) draws,
// per partition, `site_count` columns with replacement; in the pattern-
// compressed representation this is simply a multinomial resampling of the
// pattern *weights*, so a replicate costs no extra memory for tip data.
// Replicate searches yield a set of trees; the support of each internal
// branch of a reference tree (e.g. the best ML tree) is the fraction of
// replicate trees containing the same bipartition — RAxML's "-f b" drawing.
#pragma once

#include <map>
#include <vector>

#include "bio/patterns.hpp"
#include "tree/tree.hpp"
#include "util/rng.hpp"

namespace plk {

/// A bootstrap replicate: same patterns, multinomially resampled weights
/// (per partition, preserving each partition's total site count).
CompressedAlignment bootstrap_replicate(const CompressedAlignment& aln,
                                        Rng& rng);

/// For each *internal* edge of `reference`, the fraction of `replicates`
/// that contain the same tip bipartition. Trees must share tip ids.
std::map<EdgeId, double> bipartition_support(
    const Tree& reference, const std::vector<Tree>& replicates);

/// Serialize `tree` to Newick with integer support values (0-100) as inner
/// node labels, the standard way phylogenetics tools exchange support.
std::string write_newick_with_support(
    const Tree& tree, const std::map<EdgeId, double>& support,
    int precision = 6);

}  // namespace plk
