// Shared likelihood-engine core and per-tree evaluation contexts.
//
// The former monolithic Engine is split in two:
//
//   * EngineCore  — everything replicate-independent and shareable across
//     trees: the compressed tip encodings (stored per *taxon*, so any tree
//     over the alignment's taxa can use them), per-partition model
//     prototypes, the tip-lookup-table LRUs, the persistent ThreadTeam, and
//     the cached WorkSchedule. One core serves any number of trees.
//   * EvalContext — everything tree-specific: the tree, per-partition CLVs
//     and scale counts, CLV orientation + epoch state, branch lengths, the
//     NR sumtable, per-thread reduction rows, and per-context copies of the
//     models and pattern weights (so bootstrap replicates and multi-start
//     searches can diverge without touching the core).
//
// Contexts are cheap relative to a full Engine: no tip re-encoding, no
// thread spawn, no schedule rebuild. Model-parameter epochs are
// *content-addressed* from a core-global registry: distinct model states
// always get distinct epochs (so the shared tip-table LRUs can never serve
// a table built for one model state to a context holding another), while
// contexts whose models are identical share one epoch — and with it the
// cached tip tables — which is what makes fixed-model candidate and
// topology scans cheap. Overlay contexts (see the (parent, pool)
// constructor and ClvSlotPool) go further and share the parent's CLV
// buffers copy-on-score.
//
// Besides the classic per-context calls (EvalContext::loglikelihood() etc.,
// one parallel region each), the core offers a *batched* front door:
// submit() queues requests from several contexts and wait() executes the
// whole queue in a SINGLE parallel region — one synchronization event for
// the batch instead of one per tree. Replicate-heavy workflows (bootstrap,
// multi-start search, topology comparison) use this to fill the load-
// imbalance gaps a single tree's command leaves at every sync point.
//
// Threading contract: all public methods of EngineCore and EvalContext are
// master-thread only (command assembly and execution are orchestrated by
// the thread that owns the core, exactly as in the paper's Pthreads
// design); parallelism happens inside wait()/the *_now calls.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "bio/patterns.hpp"
#include "core/branch_lengths.hpp"
#include "core/core_shard.hpp"
#include "core/fault_policy.hpp"
#include "core/kernels.hpp"
#include "core/partition_model.hpp"
#include "parallel/schedule.hpp"
#include "parallel/thread_team.hpp"
#include "parallel/topology.hpp"
#include "tree/tree.hpp"
#include "util/aligned.hpp"

namespace plk {

class EvalContext;
class EngineCore;

/// A bounded pool of CLV buffers leased to *overlay* evaluation contexts
/// (see the EvalContext overlay constructor). An overlay shares its parent
/// context's CLVs read-only and redirects only the nodes it recomputes into
/// pool slots, so scoring hundreds of speculative candidates costs a handful
/// of slots each instead of a full CLV allocation per candidate. Slots are
/// sized per partition (pattern_count x cats x states). Releasing happens
/// per context: EvalContext::rebind() and the destructor return every slot
/// the context holds (the "per-context eviction" that caps memory across
/// candidate waves); trim() then drops free slots above `soft_cap` per
/// partition, so the pool's steady-state footprint follows the widest recent
/// wave rather than the all-time peak. Master-thread only, like the core.
///
/// Slot ids are STABLE handles (monotonically assigned per partition, held
/// in an id-keyed map), so trim() can reclaim ANY free slot — not just a
/// free suffix — without invalidating the ids leased contexts still hold.
/// Under a fragmented wave (middle slots released, late slots still leased)
/// the old dense-vector pool could only shrink from the tail; the stable
/// pool's footprint follows the true live set. Slot buffers are allocated
/// no-init: a slot's CLV and scale counts are always fully written by the
/// newview that first targets it before any read, so the pages are touched
/// first — and therefore NUMA-placed — by the owning shard's kernel threads.
class ClvSlotPool {
 public:
  /// `core` must outlive the pool. `soft_cap` = free slots retained per
  /// partition by trim() (0 keeps everything until trim(0)).
  explicit ClvSlotPool(EngineCore& core, std::size_t soft_cap = 64);

  struct Lease {
    int slot = -1;
    double* clv = nullptr;
    std::int32_t* scale = nullptr;
  };

  /// Lease a slot for partition `p` (reusing the lowest free id when
  /// possible — deterministic, like the old lowest-free-index scan).
  Lease acquire(int p);
  void release(int p, int slot);

  /// Drop free slots beyond the soft cap (in-use slots are never touched).
  /// Reclaims from the highest free id down, wherever it sits in the map.
  void trim();

  std::size_t slots_in_use() const;
  std::size_t slots_allocated() const;
  /// All-time high-water mark of concurrently leased slots (all partitions).
  std::size_t peak_in_use() const { return peak_; }

 private:
  struct Slot {
    AlignedNoInitDoubleVec clv;
    NoInitInt32Vec scale;
    bool in_use = false;
  };
  EngineCore* core_;
  std::size_t soft_cap_;
  std::vector<std::map<int, std::unique_ptr<Slot>>> slots_;  // [partition]
  std::vector<int> next_id_;  // per partition, monotonic
  std::size_t in_use_ = 0;
  std::size_t peak_ = 0;
};

/// Engine-core construction options.
struct EngineOptions {
  /// Total threads (including the orchestrating master). 1 = sequential.
  /// Under sharding this stays the GLOBAL count: it is split across the
  /// shard teams, and it remains the virtual-tid width of the schedule and
  /// the reduction, so results are bit-identical at every shard count.
  int threads = 1;
  /// NUMA-aware sub-cores (core/core_shard.hpp). Each shard owns a disjoint
  /// set of (partition, vt-range) slices and its own thread team; a flush
  /// fans out to the involved shards concurrently and results come back
  /// through a two-level deterministic reduction (fixed per-vt rows, then
  /// the master's fixed-order fold), bit-identical to shards=1.
  /// 1 = the classic single-team engine; 0 = auto: read the PLK_SHARDS
  /// environment variable (absent/invalid -> 1). Values above `threads`
  /// oversubscribe (every shard team has >= 1 thread).
  int shards = 0;
  /// Per-partition branch lengths (unlinked) vs one joint set (linked).
  bool unlinked_branch_lengths = false;
  /// Collect per-thread timing instrumentation in the team.
  bool instrument = true;
  /// Run the generic scalar reference kernels instead of the specialized
  /// SIMD + tip-table paths (A/B testing and golden-value verification).
  bool use_generic_kernels = false;
  /// How pattern work is assigned to threads (parallel/schedule.hpp).
  /// kCyclic reproduces the historical hard-coded split bit-for-bit.
  SchedulingStrategy schedule = SchedulingStrategy::kCyclic;
  /// Measure per-thread CPU time instead of wall time (see ThreadTeam).
  bool instrument_cpu_time = false;
  /// How multi-item batch flushes map items onto threads
  /// (parallel/schedule.hpp). kAuto switches to coarse whole-item-per-thread
  /// execution when a flush's items outnumber the threads 2:1; results are
  /// bit-identical either way (coarse replays the fine per-thread spans).
  BatchExecMode batch_exec = BatchExecMode::kAuto;
  /// Check every flushed request's reduced results (per-partition lnL sums,
  /// NR derivative sums) for non-finite values and throw a structured
  /// EngineFault (core/fault_policy.hpp) instead of silently propagating
  /// NaN/Inf into downstream state. O(partitions) per request — not per
  /// pattern — so the cost is noise next to the kernels.
  bool check_numerics = true;
  /// ThreadTeam watchdog: when a flush's workers make no progress for this
  /// many seconds, the master logs one diagnostic dump (active command,
  /// per-worker heartbeats) and keeps waiting — a silent hang becomes an
  /// attributable one. 0 disables the deadline entirely.
  double watchdog_seconds = 120.0;
};

/// Entries per edge in the tip-table LRU cache: enough for a root-edge
/// Newton-Raphson sweep that alternates between a handful of candidate
/// branch lengths without rebuilding the table each time. A batch flush may
/// temporarily exceed this (entries referenced by queued commands are
/// pinned); the cache is trimmed back after the flush.
inline constexpr int kTipTableLruSize = 4;

/// Capacity of the content-addressed model-epoch registry
/// (EngineCore::epoch_for_model). Kept as a true LRU: exceeding the cap
/// evicts the least-recently-used association batch-wise, so the model
/// states a long optimization run keeps returning to retain their epochs —
/// and with them the shared tip tables — indefinitely.
inline constexpr std::size_t kEpochRegistryCap = 4096;

/// Aggregate engine counters for the ablation benchmarks.
struct EngineStats {
  std::uint64_t commands = 0;   ///< parallel regions (== syncs)
  std::uint64_t requests = 0;   ///< logical requests (>= commands: batching)
  std::uint64_t newview_ops = 0;     ///< node-partition CLV recomputations
  std::uint64_t evaluations = 0;     ///< likelihood reductions
  std::uint64_t nr_iterations = 0;   ///< NR derivative reductions
  std::uint64_t tip_table_rebuilds = 0;  ///< tip lookup table (re)builds
  std::uint64_t tip_table_hits = 0;      ///< tip table LRU cache hits
  std::uint64_t coarse_commands = 0;     ///< flushes run coarse (item/thread)
  std::uint64_t epoch_registry_evictions = 0;  ///< model-epoch LRU evictions
  std::uint64_t tip_catalog_extensions = 0;  ///< state-mask catalog growths
  std::uint64_t numeric_faults = 0;   ///< non-finite reductions detected
  std::uint64_t faulted_flushes = 0;  ///< flushes that raised an EngineFault
  std::uint64_t assembly_rollbacks = 0;  ///< commands unwound mid-assembly
  std::uint64_t shard_fanouts = 0;    ///< flushes engaging > 1 shard team
  /// Shard teams engaged summed over flushes. Divided by `commands` this is
  /// the syncs-per-flush figure of the sharded engine: 1.0 means every
  /// flush stayed on one team (no cross-shard fan-out cost at all).
  std::uint64_t shard_team_syncs = 0;
};

/// One queued unit of work for the batched API. Span members reference
/// caller storage that must stay alive until the wait() that flushes the
/// request returns.
struct EvalRequest {
  enum class Kind {
    kEvaluate,     ///< traverse + evaluate at `edge`; result = lnL
    kSiteLnl,      ///< per-pattern lnL of `site_partition` at `edge`
    kPrepareRoot,  ///< orient all CLVs toward `edge`
    kSumtable,     ///< NR sumtable at the context's current root
    kNrDerivatives ///< d1/d2 at candidate lengths `lens` (needs sumtable)
  };

  Kind kind = Kind::kEvaluate;
  EdgeId edge = kNoId;          ///< evaluate / site-lnl / prepare-root
  /// kNrDerivatives only: fuse the full prepare-root at `edge` AND the
  /// sumtable rebuild for `partitions` into the same command, ahead of the
  /// derivative pass (the sumtable_nr factory). Each thread's NR spans read
  /// only sumtable patterns the same thread wrote earlier in the region, so
  /// no barrier is needed and the arithmetic is identical to issuing
  /// prepare_root + sumtable + nr_derivatives as three commands.
  bool sum_first = false;
  /// Partition scope (evaluate / sumtable / NR). An explicitly empty list
  /// means "no partitions" (a degenerate but valid command, matching the
  /// pre-split engine); use the factory overloads without a partition
  /// argument — which set `all_partitions` — to mean "every partition".
  std::vector<int> partitions;
  bool all_partitions = false;
  int site_partition = 0;
  std::span<const double> lens;  ///< NR: one candidate length per partition
  std::span<double> d1, d2;      ///< NR outputs (one per partition)
  std::span<double> sites_out;   ///< site-lnl output (pattern_count(p))

  static EvalRequest evaluate(EdgeId e) {
    EvalRequest r;
    r.kind = Kind::kEvaluate;
    r.edge = e;
    r.all_partitions = true;
    return r;
  }
  static EvalRequest evaluate(EdgeId e, std::vector<int> parts) {
    EvalRequest r;
    r.kind = Kind::kEvaluate;
    r.edge = e;
    r.partitions = std::move(parts);
    return r;
  }
  static EvalRequest prepare_root(EdgeId e) {
    EvalRequest r;
    r.kind = Kind::kPrepareRoot;
    r.edge = e;
    return r;
  }
  static EvalRequest sumtable() {
    EvalRequest r;
    r.kind = Kind::kSumtable;
    r.all_partitions = true;
    return r;
  }
  static EvalRequest sumtable(std::vector<int> parts) {
    EvalRequest r;
    r.kind = Kind::kSumtable;
    r.partitions = std::move(parts);
    return r;
  }
  static EvalRequest nr_derivatives(std::vector<int> parts,
                                    std::span<const double> lens,
                                    std::span<double> d1,
                                    std::span<double> d2) {
    EvalRequest r;
    r.kind = Kind::kNrDerivatives;
    r.partitions = std::move(parts);
    r.lens = lens;
    r.d1 = d1;
    r.d2 = d2;
    return r;
  }
  /// Fused edge-optimization opener: relocate the virtual root to `e`
  /// (full prepare-root semantics), rebuild the NR sumtable for `parts`,
  /// and evaluate the first derivative round at `lens` — ONE parallel
  /// region for what the classic protocol issued as three. This is the
  /// first step of every EdgeNrStepper drive (see core/branch_opt.hpp).
  static EvalRequest sumtable_nr(EdgeId e, std::vector<int> parts,
                                 std::span<const double> lens,
                                 std::span<double> d1, std::span<double> d2) {
    EvalRequest r = nr_derivatives(std::move(parts), lens, d1, d2);
    r.edge = e;
    r.sum_first = true;
    return r;
  }
  static EvalRequest site_lnl(EdgeId e, int p, std::span<double> out) {
    EvalRequest r;
    r.kind = Kind::kSiteLnl;
    r.edge = e;
    r.site_partition = p;
    r.sites_out = out;
    return r;
  }
};

/// The shared, tree-independent half of the engine. Not copyable; owns the
/// thread team and the large immutable tip-encoding buffers.
class EngineCore {
 public:
  /// `aln` must outlive the core. One model prototype per partition;
  /// contexts copy them (and may diverge afterwards).
  EngineCore(const CompressedAlignment& aln,
             std::vector<PartitionModel> models, EngineOptions opts = {});
  ~EngineCore();

  EngineCore(const EngineCore&) = delete;
  EngineCore& operator=(const EngineCore&) = delete;

  // --- structure accessors -------------------------------------------------

  const CompressedAlignment& alignment() const { return aln_; }
  int partition_count() const { return static_cast<int>(parts_.size()); }
  /// Global virtual-tid count T: the schedule's width and the reduction-row
  /// count, independent of how many shard teams the threads are split over.
  int threads() const { return vt_threads_; }
  /// Number of sub-cores the engine fans flushes out to (1 = flat engine).
  int shard_count() const { return static_cast<int>(shards_.size()); }
  const CoreShard& shard(int s) const { return *shards_[s]; }
  const ShardPlan& shard_plan() const { return plan_; }
  std::size_t pattern_count(int p) const;
  std::size_t total_patterns() const;
  bool linked_branch_lengths() const { return !unlinked_; }
  bool use_generic_kernels() const { return use_generic_; }
  /// The model prototype contexts start from (read-only; per-context models
  /// are mutable through EvalContext::model()).
  const PartitionModel& prototype_model(int p) const;

  // --- mutable tip encodings (placement query slots) -----------------------

  /// Rewrite taxon `x`'s per-pattern state masks: `masks[p]` holds one mask
  /// per pattern of partition p (masks.size() == partition_count()). The
  /// masks are translated into the per-partition code catalogs built at
  /// construction; a mask the catalog has never seen extends the catalog
  /// (and invalidates that partition's cached tip lookup tables, which are
  /// sized by code count — counted in EngineStats::tip_catalog_extensions).
  ///
  /// This is the streaming-placement "query slot" mechanism: the server's
  /// core alignment carries extra all-gap taxa whose rows are re-encoded per
  /// query. A slot taxon's codes feed kernels only through trees whose CLV
  /// orientation excludes the slot tip (the lane parent is permanently
  /// rooted at the pendant edge), so no cached CLV state is invalidated by
  /// the rewrite. Master thread only; throws while a batch is pending.
  void set_taxon_masks(std::size_t x,
                       std::span<const std::vector<StateMask>> masks);

  /// Pin `ctx` as a long-lived service context: its tip-table LRU entries
  /// and model epochs are exempt from the eviction that other contexts'
  /// churn (and death — release_context_tables()) would otherwise apply.
  /// A placement service pins its reference/lane parents so the hot tables
  /// never rebuild mid-service. Pass nullptr to unpin. One pin at a time is
  /// plenty (lane parents share one model state, hence one epoch set);
  /// pinning replaces the previous pin. Master thread only.
  void pin_service_context(const EvalContext* ctx);

  // --- batched evaluation --------------------------------------------------

  /// Queue `req` for `ctx`; returns the request's ticket (its index into
  /// the vector wait() returns). At most one pending request per context
  /// (requests against one tree are inherently ordered); a second submit
  /// for the same context throws std::logic_error. While ANY request is
  /// pending, driving a context directly (loglikelihood() etc.) also
  /// throws: a one-off command would invalidate the tip tables the queued
  /// commands reference.
  std::size_t submit(EvalContext& ctx, EvalRequest req);

  /// Execute every queued request in ONE parallel region and return one
  /// result per ticket (the lnL for kEvaluate, 0.0 for the others; NR and
  /// site-lnl outputs are written to the spans in their requests).
  std::vector<double> wait();

  /// Convenience: evaluate ctxs[i] at edges[i] for all i in one parallel
  /// region; returns the per-context log-likelihoods.
  std::vector<double> evaluate_batch(std::span<EvalContext* const> ctxs,
                                     std::span<const EdgeId> edges);

  bool has_pending() const { return !pending_.empty(); }

  /// Discard every queued request WITHOUT executing it, unwinding the
  /// tip-table entries its commands reserved. For fault recovery: a throw
  /// mid-way through a caller's submit sequence (allocation failure during
  /// assembly) can strand earlier queued requests whose output spans point
  /// into stack frames the unwinding destroyed — executing them via wait()
  /// would be use-after-free, so the recovery path aborts them instead.
  void abort_pending();

  // --- work scheduling -----------------------------------------------------

  /// The per-thread work assignment used by every command (shared by all
  /// contexts: it depends only on partition shapes, which the core fixes).
  const WorkSchedule& schedule();

  /// The schedule used for PURE Newton-Raphson commands (derivative passes
  /// with no newview/eval/sumtable in the same region). Identical to
  /// schedule() until calibrate_schedule() has measured NR separately; under
  /// kMeasured it then reflects NR's own per-partition cost, which scales
  /// differently in the state count than newview (linear vs quadratic
  /// inner loops). Fused sumtable_nr commands always stay on schedule():
  /// their NR spans must read exactly the sumtable patterns the same thread
  /// wrote earlier in the region.
  const WorkSchedule& schedule_nr();

  SchedulingStrategy scheduling_strategy() const { return sched_strategy_; }
  /// Switch strategies between commands (master thread only).
  void set_scheduling_strategy(SchedulingStrategy s);

  /// How multi-item flushes map items onto threads (see EngineOptions).
  BatchExecMode batch_execution() const { return batch_exec_; }
  /// Switch between flushes (master thread only). Results are identical in
  /// every mode; only the item-to-thread mapping changes.
  void set_batch_execution(BatchExecMode m) { batch_exec_ = m; }

  /// Content-addressed model epoch: identical model states (same
  /// exchangeabilities, frequencies, alpha, category layout) map to the SAME
  /// epoch, so contexts over equal models — bootstrap replicates on the
  /// prototype, fixed-model topology scans, candidate overlays — share
  /// tip-table LRU entries instead of duplicating tables under core-unique
  /// keys. Distinct states always get distinct epochs (the serialized state
  /// is kept and compared, so a 64-bit hash collision degrades to a fresh
  /// unique epoch, never to false sharing). The registry is a bounded LRU
  /// (kEpochRegistryCap): evicting an association only costs future sharing,
  /// and the states in active use survive arbitrary churn. Master only.
  std::uint64_t epoch_for_model(const PartitionModel& m);

  /// Re-weight the kMeasured cost model from observed timings, evaluating
  /// through `ctx` (see Engine::calibrate_schedule). No-op when the team is
  /// not instrumented.
  void calibrate_schedule(EvalContext& ctx, EdgeId edge, int reps = 2);

  // --- instrumentation -----------------------------------------------------

  const EngineStats& stats() const { return stats_; }
  /// Aggregate team instrumentation. With one shard this is exactly the
  /// flat team's stats. With several, counters are combined so the numbers
  /// keep their single-team meaning: sync_count counts LOGICAL master-side
  /// synchronization events (a flush fanned to k concurrent teams is ONE
  /// event — the per-team broadcasts are in EngineStats::shard_team_syncs),
  /// total work, imbalance, and watchdog dumps sum across teams, and the
  /// critical path takes the per-fan-out maximum over the teams running
  /// concurrently (the wall-clock-relevant path through the slowest shard).
  const TeamStats& team_stats() const;
  void reset_stats();

 private:
  friend class EvalContext;

  struct PartStatic;
  struct Command;
  struct Pending;
  struct PmatTask;

  void build_tip_data();

  // Command assembly (master thread; records ops against ctx's current
  // orientation/epoch state, which only execution updates).
  void ensure_clv(EvalContext& ctx, NodeId v, EdgeId via, bool need_all,
                  const std::vector<int>& scope, Command& cmd);
  void add_newview_op(EvalContext& ctx, NodeId v, EdgeId via,
                      const std::vector<int>& parts, Command& cmd);
  /// Record a sumtable pass at `edge` into `cmd` (shared by the standalone
  /// kSumtable request and the fused kNrDerivatives opener).
  void assemble_sumtable(EvalContext& ctx, Command& cmd, EdgeId edge,
                         const std::vector<int>& parts);
  void build_request(EvalContext& ctx, const EvalRequest& req, Command& cmd);

  /// Refresh ctx's cached per-pattern +I contribution for partition `p`
  /// (no-op without an invariant-sites term, and when both the model epoch
  /// and the invariant-mask generation are unchanged). Master thread, during
  /// assembly: execution reads the result concurrently but never writes it.
  void refresh_invariant(EvalContext& ctx, int p);

  /// Unwind a partially assembled command: clear and unpin exactly the
  /// tip-table entries it reserved in the shared LRUs. A throw mid-assembly
  /// always hits the NEWEST command (submit appends; run_now assembles with
  /// an empty queue), so entries it reserved cannot be referenced by any
  /// earlier queued command — clearing them is safe, and leaves no stamped
  /// keys whose contents would never be built (the hazard the kSiteLnl
  /// assembly comment describes).
  void rollback_command_tables(Command& cmd);

  /// Fault injection (util/fault.hpp): when armed, poison the reduced rows
  /// of an overlay request as if a non-finite CLV had propagated into its
  /// reduction. No-op (one cold branch) when injection is disarmed.
  void maybe_inject_numeric_fault(Pending& item);
  /// Containment check for one flushed request: append a FaultRecord per
  /// non-finite reduced value (per-partition lnL / NR derivative sums).
  void collect_numeric_faults(const Pending& item,
                              std::vector<FaultRecord>& out) const;
  /// Invalidate every faulted context, bump the fault counters, and throw
  /// the aggregated EngineFault. `items` is the just-finalized flush.
  [[noreturn]] void raise_numeric_faults(std::span<Pending> items,
                                         std::vector<FaultRecord> records);

  /// Execute the assembled commands of `items` in one parallel region,
  /// then update each context's orientation/epoch bookkeeping. The region
  /// runs in two phases separated by an in-region barrier: the deferred
  /// transition-matrix / transpose / tip-table construction queued during
  /// assembly (parallelized across threads), then the commands themselves —
  /// fine-grained (every thread runs its spans of every item) or coarse
  /// (whole items assigned to threads by LPT over modeled command cost, each
  /// replaying the fine per-thread spans so results stay bit-identical).
  void execute_batch(std::span<Pending> items);
  /// Reduce results and apply the request's context state transition.
  double finalize(Pending& item);
  /// Assemble + execute + finalize one request immediately (the classic
  /// one-command path used by EvalContext's methods).
  double run_now(EvalContext& ctx, EvalRequest req);

  /// Execute virtual tid `tid`'s share of one item under `sched`. When
  /// `shard` is non-null, (partition, tid) pairs the shard does not own are
  /// skipped — including their reduction-row writes, which exactly one
  /// shard performs per (vt, partition).
  void run_item(const Pending& item, int tid, const WorkSchedule& sched,
                const CoreShard* shard = nullptr);
  kernel::ChildView child_view(const EvalContext& ctx, int p, NodeId v) const;

  /// First-touch initialization for a context's freshly (no-init) allocated
  /// CLV / scale / sumtable buffers: fans zero-filling out so every page is
  /// first written — and therefore NUMA-placed — by the shard team that
  /// will execute it. Single-shard cores fill on the master (the classic
  /// behavior, byte for byte).
  void first_touch_context(EvalContext& ctx);

  /// Execute one deferred table-construction task (transition matrices for
  /// one edge-partition, plus its transpose or tip lookup table). Runs on
  /// worker threads in execute_batch's pre-stage; `pm` is thread-local
  /// scratch. Tasks are mutually independent (disjoint destinations).
  void run_pmat_task(Pending& item, const PmatTask& t, Matrix& pm) const;
  /// Static-model cost of a command (for the coarse executor's LPT item
  /// assignment): sum of patterns x states^2 x cats over every partition
  /// pass the command performs.
  double modeled_command_cost(const Command& cmd) const;

  /// Cached tip lookup table for edge `e` of `ctx`'s tree in partition `p`,
  /// keyed on (model epoch, branch length). Epochs are core-globally unique,
  /// so contexts never collide in the shared LRU; entries referenced by the
  /// current batch are pinned against eviction until the flush completes.
  /// On a miss the entry is *reserved* (sized, keyed, pinned) but its table
  /// is built later by the flush's parallel pre-stage; `build` tells the
  /// caller to queue the construction task.
  struct TipTableRef {
    const double* data = nullptr;
    double* dst = nullptr;
    bool build = false;
  };
  TipTableRef tip_table_for(EvalContext& ctx, int p, EdgeId e);
  /// Reserve pmat space for edge `e` toward `endpoint` in partition `p` and
  /// queue the deferred construction task (matrices + transpose for inner
  /// endpoints, matrices + tip lookup table for tip endpoints). Returns the
  /// tip table pointer for tip endpoints (nullptr otherwise); `off_out`
  /// receives the pmat offset.
  const double* queue_edge_tables(EvalContext& ctx, Command& cmd, int p,
                                  EdgeId e, NodeId endpoint,
                                  std::size_t& off_out);
  /// Per-context sym x indicator table ([code][state]), keyed on the model
  /// epoch alone (branch-length independent).
  const double* sym_table_for(EvalContext& ctx, int p);
  void trim_tip_tables(std::size_t batch_width);
  /// Shrink every tip-table LRU to steady-state capacity; called when a
  /// context dies (its core-unique epochs can never hit again, so tables
  /// retained for batch width would be dead weight).
  void release_context_tables();

  std::uint64_t next_epoch() { return ++epoch_counter_; }
  void check_not_pending(const EvalContext& ctx) const;

  const CompressedAlignment& aln_;
  std::vector<std::unique_ptr<PartStatic>> parts_;
  /// The sub-cores (core/core_shard.hpp), built once from the static
  /// ShardPlan. Shard 0's team is master-inline; the rest are detached.
  std::vector<std::unique_ptr<CoreShard>> shards_;
  ShardPlan plan_;
  /// Global virtual-tid count T (see threads()).
  int vt_threads_ = 1;
  /// Shard 0's team (non-owning) — the master-inline team used for
  /// single-team fast paths and master-side bookkeeping.
  ThreadTeam* team_ = nullptr;

  bool unlinked_ = false;
  bool use_generic_ = false;

  // Work-assignment cache (see schedule() / schedule_nr()).
  SchedulingStrategy sched_strategy_ = SchedulingStrategy::kCyclic;
  WorkSchedule sched_;
  WorkSchedule sched_nr_;
  bool sched_dirty_ = true;
  std::vector<double> measured_cost_;     // per partition, sec/pattern
  std::vector<double> measured_nr_cost_;  // per partition, sec/pattern (NR)
  BatchExecMode batch_exec_ = BatchExecMode::kAuto;

  std::uint64_t epoch_counter_ = 0;  // model-state epochs, core-global
  /// Content hash -> (epoch, serialized state, recency) for
  /// epoch_for_model(); a bounded LRU over kEpochRegistryCap entries.
  struct EpochEntry {
    std::uint64_t epoch = 0;
    std::vector<double> state;
    std::uint64_t last_used = 0;
  };
  std::unordered_map<std::uint64_t, EpochEntry> epoch_of_state_;
  std::uint64_t epoch_use_clock_ = 0;  // registry recency counter
  std::uint64_t tip_clock_ = 0;      // LRU recency counter
  std::uint64_t flush_id_ = 1;       // pins LRU entries of the open batch
  std::vector<std::pair<int, EdgeId>> lru_overflow_;  // to trim post-flush

  /// Service pin (pin_service_context): the long-lived context whose tip
  /// tables are marked eviction-exempt, and its model epochs (protected in
  /// the epoch registry's LRU eviction).
  const EvalContext* service_ctx_ = nullptr;
  std::vector<std::uint64_t> service_epochs_;

  std::vector<Pending> pending_;

  bool check_numerics_ = true;
  /// Description of the flush currently inside team_->run(), read by the
  /// watchdog's diagnostic dump (master sets it before entering the
  /// parallel region; the dump happens on the watchdog monitor thread while
  /// the command is in flight, hence atomics). No per-flush allocation.
  std::atomic<std::size_t> active_items_{0};
  std::atomic<std::size_t> active_tasks_{0};
  std::atomic<bool> active_coarse_{false};
  std::atomic<int> active_shards_{0};
  static std::string describe_active_flush(void* self);

  EngineStats stats_;
  /// Aggregated cross-team instrumentation (see team_stats()). Updated per
  /// fan-out with per-team stat deltas; watchdog dumps folded in on read.
  mutable TeamStats agg_team_stats_;
};

/// The per-tree half of the engine: one evaluation state over a shared
/// core. Not copyable; owns the CLV buffers for its tree.
class EvalContext {
 public:
  /// `core` must outlive the context. The tree's tip labels must match the
  /// core alignment's taxon names (any order). Models default to copies of
  /// the core's prototypes; custom models must match the prototypes' state
  /// and category counts. Pattern weights start as the alignment's and can
  /// be replaced per context (bootstrap replicates).
  EvalContext(EngineCore& core, Tree tree);
  EvalContext(EngineCore& core, Tree tree, std::vector<PartitionModel> models);

  /// Overlay (copy-on-score) constructor: a lightweight scoring context over
  /// `parent`'s state. The overlay shares the parent's CLV buffers read-only
  /// and leases a slot from `pool` only for each node it recomputes itself,
  /// so it costs O(touched nodes) CLV memory instead of O(inner nodes).
  /// Both `parent` and `pool` must outlive the overlay, and the parent must
  /// not be evaluated, re-rooted, or mutated while the overlay is in use
  /// (its shared buffers would change underneath); call rebind() after any
  /// parent change to re-synchronize. Used by the batched SPR candidate
  /// scorer (search/candidate_batch.hpp).
  EvalContext(const EvalContext& parent, ClvSlotPool& pool);

  ~EvalContext();

  EvalContext(const EvalContext&) = delete;
  EvalContext& operator=(const EvalContext&) = delete;

  // --- structure accessors -------------------------------------------------

  EngineCore& core() { return *core_; }
  const EngineCore& core() const { return *core_; }

  const Tree& tree() const { return tree_; }
  Tree& tree() { return tree_; }
  int partition_count() const { return core_->partition_count(); }

  const PartitionModel& model(int p) const;
  /// Mutable model access; call invalidate_partition(p) after changing it.
  PartitionModel& model(int p);

  BranchLengths& branch_lengths() { return lengths_; }
  const BranchLengths& branch_lengths() const { return lengths_; }

  std::span<const double> pattern_weights(int p) const;
  /// Replace partition `p`'s pattern weights (size must match the pattern
  /// count). Weights enter only at reduction time, so no CLV is
  /// invalidated; previously returned likelihoods are simply stale.
  void set_pattern_weights(int p, std::span<const double> weights);

  // --- invalidation --------------------------------------------------------

  /// Mark all CLVs of partition `p` stale (after a model parameter change).
  void invalidate_partition(int p);
  /// Drop the orientation of node `v` (after topology surgery around it).
  void invalidate_node(NodeId v);
  /// Drop all orientations (full traversal on next evaluation).
  void invalidate_all();

  // --- likelihood (one parallel region per call; see EngineCore::submit
  // --- for the batched alternative) ---------------------------------------

  double loglikelihood(EdgeId edge);
  double loglikelihood(EdgeId edge, const std::vector<int>& partitions);
  std::span<const double> per_partition_lnl() const { return last_lnl_; }

  std::vector<double> site_loglikelihoods(EdgeId edge, int p);
  /// Allocation-free overload: writes into `out` (size pattern_count(p)).
  void site_loglikelihoods(EdgeId edge, int p, std::span<double> out);

  /// The edge the CLVs currently point toward (kNoId before first use).
  EdgeId root_edge() const { return root_edge_; }

  void prepare_root(EdgeId edge);
  void compute_sumtable(const std::vector<int>& partitions);
  void nr_derivatives(const std::vector<int>& partitions,
                      std::span<const double> lens, std::span<double> d1,
                      std::span<double> d2);
  /// Fused prepare_root(edge) + compute_sumtable(partitions) +
  /// nr_derivatives(...) — one command (see EvalRequest::sumtable_nr).
  void nr_derivatives_at(EdgeId edge, const std::vector<int>& partitions,
                         std::span<const double> lens, std::span<double> d1,
                         std::span<double> d2);

  // --- state management ----------------------------------------------------

  /// Write mean branch lengths back into the tree (for Newick export).
  void sync_tree_lengths();

  /// Adopt `other`'s tree, branch lengths, and models (both contexts must
  /// share this context's core). Invalidates everything; used to carry the
  /// winner of a multi-start search back into the primary context.
  void copy_state_from(const EvalContext& other);

  /// True for overlay contexts created with the (parent, pool) constructor.
  bool is_overlay() const { return pool_ != nullptr; }

  /// Overlay contexts only: release every leased CLV slot back to the pool
  /// (the per-context eviction) and re-adopt `parent`'s current tree, branch
  /// lengths, orientation, and CLV validity state, sharing the parent's CLV
  /// buffers again. Models and pattern weights are re-copied only when the
  /// parent's have changed since the last rebind. The parent's CLVs are
  /// shared as-is: whatever is valid in the parent is valid here.
  void rebind(const EvalContext& parent);

 private:
  friend class EngineCore;

  struct PartDyn;

  /// Redirect (inner, p) to an owned pool slot before a newview writes it
  /// (no-op for non-overlay contexts and already-owned nodes). Called at
  /// command-assembly time on the master thread.
  void ensure_owned_clv(int p, std::size_t inner);

  EngineCore* core_;
  ClvSlotPool* pool_ = nullptr;            // overlays only
  const EvalContext* bound_parent_ = nullptr;  // last rebind() source
  Tree tree_;
  std::vector<std::unique_ptr<PartDyn>> dyn_;
  BranchLengths lengths_;

  std::vector<EdgeId> orient_;                 // per node; kNoId = invalid
  std::vector<std::uint64_t> model_epoch_;     // per partition (content-keyed)
  std::vector<std::uint64_t> weights_stamp_;   // per partition, bumped on
                                               // set_pattern_weights
  std::vector<std::uint64_t> parent_weights_stamp_;  // overlays: stamp seen
                                                     // at last rebind
  std::vector<std::vector<std::uint64_t>> clv_epoch_;  // [inner][partition]
  std::vector<NodeId> tip_of_taxon_;           // alignment taxon -> tree tip
  std::vector<std::size_t> taxon_of_tip_;      // tree tip -> alignment taxon

  EdgeId root_edge_ = kNoId;
  bool sumtable_valid_ = false;
  std::vector<double> last_lnl_;               // per partition

  // Per-thread reduction buffers (lnl / d1 / d2). Rows are one cache-line
  // aligned and stride-padded so two threads never write the same line.
  AlignedDoubleVec red_lnl_, red_d1_, red_d2_;
  std::size_t red_stride_ = 0;
};

}  // namespace plk
