// The PLK engine: likelihood evaluation over a partitioned alignment.
//
// Engine is a thin facade over the EngineCore / EvalContext pair defined in
// core/engine_core.hpp: one shared core (compressed tip data, per-partition
// model prototypes, tip-table LRUs, the thread team, the cached work
// schedule) bound to one evaluation context (tree, CLVs, orientation and
// epoch state, branch lengths, NR sumtable, reduction rows). Every call
// forwards; the single-context behavior — command structure, schedules,
// reduction order — is bit-identical to the pre-split monolithic engine,
// which the golden tests (tests/test_kernels_golden.cpp) pin down.
//
// The engine issues *commands* — each command is one parallel region
// followed by one synchronization, mirroring the RAxML Pthreads design the
// paper describes:
//
//   * traverse            - execute a (partial) tree traversal of newview ops
//   * traverse + evaluate - same, then reduce per-partition log-likelihoods
//   * sumtable            - precompute NR coefficients at the virtual root
//   * nr_derivatives      - reduce d lnL/db, d2 lnL/db2 for a set of
//                           partitions with per-partition candidate lengths
//
// For evaluating MANY trees over one alignment (bootstrap replicates,
// multi-start searches), share one EngineCore across several EvalContexts
// and use the core's batched submit()/wait() API instead of one Engine per
// tree — see core/engine_core.hpp and docs/architecture.md.
//
// Discipline required of callers (enforced by the optimizers in this repo):
// branch lengths may only change on the *current* root edge (or be followed
// by invalidate_all()); topology surgery must be followed by
// invalidate_node() on every rewired node plus the nodes on the paths from
// the affected edges to the current root edge.
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "core/engine_core.hpp"

namespace plk {

/// The likelihood engine: one core + one context. Not copyable. Also usable
/// as a non-owning view over an externally owned (core, context) pair, so
/// code written against Engine& (the optimizers, the search) can drive any
/// context of a shared core.
class Engine {
 public:
  /// Owning constructor: builds a private core and context. `aln` must
  /// outlive the engine. Tree tip labels must match the alignment's taxon
  /// names (any order). One model per partition.
  Engine(const CompressedAlignment& aln, Tree tree,
         std::vector<PartitionModel> models, EngineOptions opts = {});

  /// Non-owning view: drive `ctx` (a context of `core`) through the Engine
  /// API. Both must outlive the view.
  Engine(EngineCore& core, EvalContext& ctx);

  ~Engine();

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  // --- the core/context pair ----------------------------------------------

  EngineCore& core() { return *core_; }
  const EngineCore& core() const { return *core_; }
  EvalContext& context() { return *ctx_; }
  const EvalContext& context() const { return *ctx_; }

  // --- structure accessors -------------------------------------------------

  const Tree& tree() const { return ctx_->tree(); }
  Tree& tree() { return ctx_->tree(); }
  int partition_count() const { return core_->partition_count(); }
  int threads() const { return core_->threads(); }
  /// NUMA-aware sub-cores the engine is sharded into (1 = flat engine).
  int shard_count() const { return core_->shard_count(); }
  std::size_t pattern_count(int p) const { return core_->pattern_count(p); }
  std::size_t total_patterns() const { return core_->total_patterns(); }

  const PartitionModel& model(int p) const { return ctx_->model(p); }
  /// Mutable model access; call invalidate_partition(p) after changing it.
  PartitionModel& model(int p) { return ctx_->model(p); }

  BranchLengths& branch_lengths() { return ctx_->branch_lengths(); }
  const BranchLengths& branch_lengths() const {
    return ctx_->branch_lengths();
  }

  // --- invalidation --------------------------------------------------------

  void invalidate_partition(int p) { ctx_->invalidate_partition(p); }
  void invalidate_node(NodeId v) { ctx_->invalidate_node(v); }
  void invalidate_all() { ctx_->invalidate_all(); }

  // --- likelihood ----------------------------------------------------------

  /// Log-likelihood with the virtual root on `edge`, summed over all
  /// partitions. One command (traversal ops fused with the evaluation).
  double loglikelihood(EdgeId edge) { return ctx_->loglikelihood(edge); }

  /// Log-likelihood restricted to the given partitions; fills
  /// per_partition_lnl() for exactly those partitions. This is the oldPAR /
  /// newPAR workhorse: oldPAR calls it with a single partition, newPAR with
  /// all active ones, at identical synchronization cost per call.
  double loglikelihood(EdgeId edge, const std::vector<int>& partitions) {
    return ctx_->loglikelihood(edge, partitions);
  }

  /// Per-partition log-likelihoods from the most recent evaluation
  /// (entries for partitions not in that evaluation are stale).
  std::span<const double> per_partition_lnl() const {
    return ctx_->per_partition_lnl();
  }

  /// Per-pattern log-likelihoods of partition `p` with the virtual root on
  /// `edge` (scale-corrected, not weight-multiplied: the total partition lnL
  /// is the weight-dot-product of this vector). One command.
  std::vector<double> site_loglikelihoods(EdgeId edge, int p) {
    return ctx_->site_loglikelihoods(edge, p);
  }
  /// Allocation-free overload: writes into `out` (size pattern_count(p)).
  void site_loglikelihoods(EdgeId edge, int p, std::span<double> out) {
    ctx_->site_loglikelihoods(edge, p, out);
  }

  /// The edge the CLVs currently point toward (kNoId before first use).
  EdgeId root_edge() const { return ctx_->root_edge(); }

  // --- branch-length optimization primitives -------------------------------

  /// Orient all CLVs toward `edge` (one command, possibly with zero ops).
  void prepare_root(EdgeId edge) { ctx_->prepare_root(edge); }

  /// Precompute NR sumtables at the current root for `partitions`.
  /// prepare_root(edge) must have been called. One command.
  void compute_sumtable(const std::vector<int>& partitions) {
    ctx_->compute_sumtable(partitions);
  }

  /// d lnL / db and d2 lnL / db2 for each listed partition at candidate
  /// branch length `lens[i]` (one per listed partition; in linked mode pass
  /// the same value and sum the outputs). Requires compute_sumtable().
  /// One command regardless of how many partitions are listed.
  void nr_derivatives(const std::vector<int>& partitions,
                      std::span<const double> lens, std::span<double> d1,
                      std::span<double> d2) {
    ctx_->nr_derivatives(partitions, lens, d1, d2);
  }

  /// Fused edge-optimization opener: prepare_root(edge) + compute_sumtable
  /// + the first NR derivative round, in ONE command instead of three (the
  /// arithmetic is identical; see EvalRequest::sumtable_nr).
  void nr_derivatives_at(EdgeId edge, const std::vector<int>& partitions,
                         std::span<const double> lens, std::span<double> d1,
                         std::span<double> d2) {
    ctx_->nr_derivatives_at(edge, partitions, lens, d1, d2);
  }

  // --- work scheduling ------------------------------------------------------

  /// The per-thread work assignment used by every command (shared across
  /// every context of the core).
  const WorkSchedule& schedule() { return core_->schedule(); }

  SchedulingStrategy scheduling_strategy() const {
    return core_->scheduling_strategy();
  }
  /// Switch strategies between commands (master thread only).
  void set_scheduling_strategy(SchedulingStrategy s) {
    core_->set_scheduling_strategy(s);
  }

  /// Re-weight the kMeasured cost model from observed timings (see
  /// EngineCore::calibrate_schedule). Moves the virtual root to `edge`.
  void calibrate_schedule(EdgeId edge, int reps = 2) {
    core_->calibrate_schedule(*ctx_, edge, reps);
  }

  // --- instrumentation ------------------------------------------------------

  const EngineStats& stats() const { return core_->stats(); }
  const TeamStats& team_stats() const { return core_->team_stats(); }
  void reset_stats() { core_->reset_stats(); }

  /// Write mean branch lengths back into the tree (for Newick export).
  void sync_tree_lengths() { ctx_->sync_tree_lengths(); }

 private:
  std::unique_ptr<EngineCore> owned_core_;
  std::unique_ptr<EvalContext> owned_ctx_;
  EngineCore* core_;
  EvalContext* ctx_;
};

}  // namespace plk
