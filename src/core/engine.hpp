// The PLK engine: likelihood evaluation over a partitioned alignment.
//
// The engine owns, per partition: encoded tip data, per-inner-node CLVs with
// scale counts, the model parameters, and a Newton-Raphson sumtable. It owns
// the thread team and issues *commands* — each command is one parallel
// region followed by one synchronization, mirroring the RAxML Pthreads
// design the paper describes:
//
//   * traverse            - execute a (partial) tree traversal of newview ops
//   * traverse + evaluate - same, then reduce per-partition log-likelihoods
//   * sumtable            - precompute NR coefficients at the virtual root
//   * nr_derivatives      - reduce d lnL/db, d2 lnL/db2 for a set of
//                           partitions with per-partition candidate lengths
//
// CLV validity tracking: every inner node stores the edge its CLV "points
// toward" (the virtual-root side); per-partition epochs invalidate CLVs when
// a partition's model parameters change. Partial traversals fall out
// naturally: moving the virtual root to an adjacent branch re-orients only
// the nodes on the path (the paper's "3-4 inner likelihood vectors on
// average" during tree search).
//
// Discipline required of callers (enforced by the optimizers in this repo):
// branch lengths may only change on the *current* root edge (or be followed
// by invalidate_all()); topology surgery must be followed by
// invalidate_node() on every rewired node plus the nodes on the paths from
// the affected edges to the current root edge.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "bio/patterns.hpp"
#include "core/branch_lengths.hpp"
#include "core/kernels.hpp"
#include "core/partition_model.hpp"
#include "parallel/schedule.hpp"
#include "parallel/thread_team.hpp"
#include "tree/tree.hpp"
#include "util/aligned.hpp"

namespace plk {

/// Engine construction options.
struct EngineOptions {
  /// Total threads (including the orchestrating master). 1 = sequential.
  int threads = 1;
  /// Per-partition branch lengths (unlinked) vs one joint set (linked).
  bool unlinked_branch_lengths = false;
  /// Collect per-thread timing instrumentation in the team.
  bool instrument = true;
  /// Run the generic scalar reference kernels instead of the specialized
  /// SIMD + tip-table paths (A/B testing and golden-value verification).
  bool use_generic_kernels = false;
  /// How pattern work is assigned to threads (parallel/schedule.hpp).
  /// kCyclic reproduces the historical hard-coded split bit-for-bit.
  SchedulingStrategy schedule = SchedulingStrategy::kCyclic;
  /// Measure per-thread CPU time instead of wall time (see ThreadTeam).
  bool instrument_cpu_time = false;
};

/// Entries per edge in the tip-table LRU cache: enough for a root-edge
/// Newton-Raphson sweep that alternates between a handful of candidate
/// branch lengths without rebuilding the table each time.
inline constexpr int kTipTableLruSize = 4;

/// Aggregate engine counters for the ablation benchmarks.
struct EngineStats {
  std::uint64_t commands = 0;        ///< parallel commands (== syncs)
  std::uint64_t newview_ops = 0;     ///< node-partition CLV recomputations
  std::uint64_t evaluations = 0;     ///< likelihood reductions
  std::uint64_t nr_iterations = 0;   ///< NR derivative reductions
  std::uint64_t tip_table_rebuilds = 0;  ///< tip lookup table (re)builds
  std::uint64_t tip_table_hits = 0;      ///< tip table LRU cache hits
};

/// The likelihood engine. Not copyable; owns large CLV buffers.
class Engine {
 public:
  /// `aln` must outlive the engine. Tree tip labels must match the
  /// alignment's taxon names (any order). One model per partition.
  Engine(const CompressedAlignment& aln, Tree tree,
         std::vector<PartitionModel> models, EngineOptions opts = {});
  ~Engine();

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  // --- structure accessors -------------------------------------------------

  const Tree& tree() const { return tree_; }
  Tree& tree() { return tree_; }
  int partition_count() const { return static_cast<int>(parts_.size()); }
  int threads() const { return team_->size(); }
  std::size_t pattern_count(int p) const;
  std::size_t total_patterns() const;

  const PartitionModel& model(int p) const;
  /// Mutable model access; call invalidate_partition(p) after changing it.
  PartitionModel& model(int p);

  BranchLengths& branch_lengths() { return lengths_; }
  const BranchLengths& branch_lengths() const { return lengths_; }

  // --- invalidation --------------------------------------------------------

  /// Mark all CLVs of partition `p` stale (after a model parameter change).
  void invalidate_partition(int p);
  /// Drop the orientation of node `v` (after topology surgery around it).
  void invalidate_node(NodeId v);
  /// Drop all orientations (full traversal on next evaluation).
  void invalidate_all();

  // --- likelihood ----------------------------------------------------------

  /// Log-likelihood with the virtual root on `edge`, summed over all
  /// partitions. One command (traversal ops fused with the evaluation).
  double loglikelihood(EdgeId edge);

  /// Log-likelihood restricted to the given partitions; fills
  /// per_partition_lnl() for exactly those partitions. This is the oldPAR /
  /// newPAR workhorse: oldPAR calls it with a single partition, newPAR with
  /// all active ones, at identical synchronization cost per call.
  double loglikelihood(EdgeId edge, const std::vector<int>& partitions);

  /// Per-partition log-likelihoods from the most recent evaluation
  /// (entries for partitions not in that evaluation are stale).
  std::span<const double> per_partition_lnl() const { return last_lnl_; }

  /// Per-pattern log-likelihoods of partition `p` with the virtual root on
  /// `edge` (scale-corrected, not weight-multiplied: the total partition lnL
  /// is the weight-dot-product of this vector). One command.
  std::vector<double> site_loglikelihoods(EdgeId edge, int p);

  /// The edge the CLVs currently point toward (kNoId before first use).
  EdgeId root_edge() const { return root_edge_; }

  // --- branch-length optimization primitives -------------------------------

  /// Orient all CLVs toward `edge` (one command, possibly with zero ops).
  void prepare_root(EdgeId edge);

  /// Precompute NR sumtables at the current root for `partitions`.
  /// prepare_root(edge) must have been called. One command.
  void compute_sumtable(const std::vector<int>& partitions);

  /// d lnL / db and d2 lnL / db2 for each listed partition at candidate
  /// branch length `lens[i]` (one per listed partition; in linked mode pass
  /// the same value and sum the outputs). Requires compute_sumtable().
  /// One command regardless of how many partitions are listed.
  void nr_derivatives(const std::vector<int>& partitions,
                      std::span<const double> lens, std::span<double> d1,
                      std::span<double> d2);

  // --- work scheduling ------------------------------------------------------

  /// The per-thread work assignment used by every command. Computed once per
  /// (strategy, thread count, partition shapes) and cached; strategy changes
  /// and calibration invalidate it (the engine's shape itself is fixed at
  /// construction).
  const WorkSchedule& schedule();

  SchedulingStrategy scheduling_strategy() const { return sched_strategy_; }
  /// Switch strategies between commands (master thread only).
  void set_scheduling_strategy(SchedulingStrategy s);

  /// Re-weight the kMeasured cost model from observed timings: evaluates
  /// each partition alone at `edge` (`reps` instrumented commands each) and
  /// records the per-pattern seconds seen by the team. Leaves likelihoods
  /// unchanged, but moves the virtual root to `edge`. No-op when the team
  /// is not instrumented.
  void calibrate_schedule(EdgeId edge, int reps = 2);

  // --- instrumentation ------------------------------------------------------

  const EngineStats& stats() const { return stats_; }
  const TeamStats& team_stats() const { return team_->stats(); }
  void reset_stats();

  /// Write mean branch lengths back into the tree (for Newick export).
  void sync_tree_lengths();

 private:
  struct PartData;
  struct Command;

  void build_tip_data();
  /// Recursively ensure node `v`'s CLV points toward `via` and is fresh for
  /// the scope; appends newview ops. `need_all`: validity required for every
  /// partition (orientation flips), else for `scope` only.
  void ensure_clv(NodeId v, EdgeId via, bool need_all,
                  const std::vector<int>& scope, Command& cmd);
  void add_newview_op(NodeId v, EdgeId via, const std::vector<int>& parts,
                      Command& cmd);
  void execute(Command& cmd);
  kernel::ChildView child_view(int p, NodeId v) const;

  /// Cached tip lookup table (P x indicator products, [code][cat][state])
  /// for edge `e` in partition `p`. Served from a small per-edge LRU keyed
  /// on (model epoch, branch length) — the table's content depends on
  /// nothing else — and rebuilt from `pmat` (this edge's row-major
  /// per-category transition matrices) on a miss. Master-thread only
  /// (command assembly).
  const double* tip_table_for(int p, EdgeId e, const double* pmat);
  /// Specialized-path table preparation for the matrices of edge `e` just
  /// appended to cmd.pmats at `off`, applied toward `endpoint`: keeps
  /// cmd.pmats_t in lockstep, transposes for an inner endpoint, and returns
  /// the refreshed tip lookup table for a tip endpoint (nullptr otherwise,
  /// and always under use_generic_kernels).
  const double* prepare_edge_tables(Command& cmd, int p, std::size_t off,
                                    EdgeId e, NodeId endpoint);
  /// Cached sym x indicator tip table ([code][state]) for partition `p`,
  /// keyed on the model epoch alone (the symmetric transform is branch-
  /// length independent).
  const double* sym_table_for(int p);

  const CompressedAlignment& aln_;
  Tree tree_;
  std::vector<std::unique_ptr<PartData>> parts_;
  BranchLengths lengths_;
  std::unique_ptr<ThreadTeam> team_;

  std::vector<EdgeId> orient_;              // per node; kNoId = invalid
  std::vector<std::uint32_t> model_epoch_;  // per partition
  std::vector<std::vector<std::uint32_t>> clv_epoch_;  // [inner][partition]
  std::vector<NodeId> tip_of_taxon_;        // alignment taxon -> tree tip

  EdgeId root_edge_ = kNoId;
  bool sumtable_valid_ = false;
  bool use_generic_ = false;
  std::vector<double> last_lnl_;            // per partition

  // Work-assignment cache (see schedule()).
  SchedulingStrategy sched_strategy_ = SchedulingStrategy::kCyclic;
  WorkSchedule sched_;
  bool sched_dirty_ = true;
  std::vector<double> measured_cost_;       // per partition, sec/pattern
  std::uint64_t tip_clock_ = 0;             // LRU recency counter

  // Per-thread reduction buffers (lnl / d1 / d2). Rows are one cache-line
  // aligned and stride-padded so two threads never write the same line.
  AlignedDoubleVec red_lnl_, red_d1_, red_d2_;
  std::size_t red_stride_ = 0;

  EngineStats stats_;
};

}  // namespace plk
