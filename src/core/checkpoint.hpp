// Checkpointing: serialize and restore a full analysis state.
//
// Phylogenomic runs take hours to days (the paper's motivating analyses
// burned 2.25M CPU-hours); RAxML therefore writes periodic checkpoints.
// A plkit checkpoint captures everything the engine cannot recompute from
// the alignment: the tree topology (as an explicit edge list, so edge ids —
// and with them the per-partition branch-length matrix — survive exactly),
// every partition's model parameters, all branch lengths, and (optionally)
// the search-loop progress counters needed to resume a topology search.
//
// The text format is line-oriented and versioned (version 2): the payload
// is followed by a `checksum <hex>` trailer — an FNV-1a-64 over every byte
// up to and including the newline that precedes it — so a torn or bit-
// flipped file is detected before any state is touched. apply_checkpoint()
// validates taxa against the target engine and restores state such that the
// engine's next log-likelihood equals the checkpointed one bit-for-bit
// (given the same thread count).
//
// The file wrappers are crash-consistent: save writes to `path.tmp`,
// flushes it to disk, rotates the previous checkpoint to `path.1`, and
// renames the temp file into place — a crash at any instant leaves either
// the old or the new generation intact, never a torn file under `path`.
// load falls back to `path.1` when `path` is missing, truncated, or fails
// its checksum, so a run always resumes from the last good generation.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "core/engine.hpp"

namespace plk {

/// Search-loop progress carried by checkpoints written at round boundaries
/// of search_ml (absent from checkpoints of a bare context; `valid` says
/// which kind was loaded).
struct SearchProgress {
  int rounds = 0;
  int accepted_moves = 0;
  std::uint64_t candidates_scored = 0;
  double lnl = 0.0;
  /// The search had CONVERGED at this boundary (final checkpoint of a
  /// completed run). Resuming such a checkpoint reports the recorded result
  /// instead of searching further.
  bool done = false;
  bool valid = false;
};

/// Serialize the context's tree, models and branch lengths (plus search
/// progress, when given). A checkpoint captures exactly the per-tree half
/// of the engine split, so any context of a shared core — a bootstrap
/// replicate mid-run, a multi-start candidate — can be checkpointed
/// independently.
std::string serialize_checkpoint(const EvalContext& ctx,
                                 const SearchProgress* progress = nullptr);

/// Restore a checkpoint into a context whose core is built over the *same
/// alignment* (taxa are validated by label). Invalidates all CLVs; does
/// not touch the context's pattern weights (a bootstrap replicate restores
/// its resampled weights separately, as it set them). When `progress` is
/// non-null it receives the embedded search progress (valid=false if the
/// checkpoint carries none).
/// Throws std::runtime_error on checksum, format or compatibility errors.
void apply_checkpoint(EvalContext& ctx, std::string_view text,
                      SearchProgress* progress = nullptr);

/// Engine facade forwarders (checkpoint the engine's own context).
std::string serialize_checkpoint(const Engine& engine);
void apply_checkpoint(Engine& engine, std::string_view text);

/// Crash-consistent file wrappers: atomic rename with a 2-deep ring of
/// last-good generations (`path`, then `path.1`) on save; checksum-verified
/// load with automatic fallback to the previous generation.
void save_checkpoint_file(const EvalContext& ctx, const std::string& path,
                          const SearchProgress* progress = nullptr);
void load_checkpoint_file(EvalContext& ctx, const std::string& path,
                          SearchProgress* progress = nullptr);
void save_checkpoint_file(const Engine& engine, const std::string& path);
void load_checkpoint_file(Engine& engine, const std::string& path);

}  // namespace plk
