// Checkpointing: serialize and restore a full analysis state.
//
// Phylogenomic runs take hours to days (the paper's motivating analyses
// burned 2.25M CPU-hours); RAxML therefore writes periodic checkpoints.
// A plkit checkpoint captures everything the engine cannot recompute from
// the alignment: the tree topology (as an explicit edge list, so edge ids —
// and with them the per-partition branch-length matrix — survive exactly),
// every partition's model parameters, and all branch lengths.
//
// The text format is line-oriented and versioned; apply_checkpoint()
// validates taxa against the target engine and restores state such that the
// engine's next log-likelihood equals the checkpointed one bit-for-bit
// (given the same thread count).
#pragma once

#include <string>
#include <string_view>

#include "core/engine.hpp"

namespace plk {

/// Serialize the context's tree, models and branch lengths. A checkpoint
/// captures exactly the per-tree half of the engine split, so any context
/// of a shared core — a bootstrap replicate mid-run, a multi-start
/// candidate — can be checkpointed independently.
std::string serialize_checkpoint(const EvalContext& ctx);

/// Restore a checkpoint into a context whose core is built over the *same
/// alignment* (taxa are validated by label). Invalidates all CLVs; does
/// not touch the context's pattern weights (a bootstrap replicate restores
/// its resampled weights separately, as it set them).
/// Throws std::runtime_error on format or compatibility errors.
void apply_checkpoint(EvalContext& ctx, std::string_view text);

/// Engine facade forwarders (checkpoint the engine's own context).
std::string serialize_checkpoint(const Engine& engine);
void apply_checkpoint(Engine& engine, std::string_view text);

/// File convenience wrappers.
void save_checkpoint_file(const EvalContext& ctx, const std::string& path);
void load_checkpoint_file(EvalContext& ctx, const std::string& path);
void save_checkpoint_file(const Engine& engine, const std::string& path);
void load_checkpoint_file(Engine& engine, const std::string& path);

}  // namespace plk
