// Structured engine faults: what the numerical-containment layer throws.
//
// EngineCore checks the already-reduced per-request results (per-partition
// lnL sums, Newton-Raphson derivative sums) for non-finite values at every
// flush boundary — a handful of isfinite() tests per request, nothing per
// pattern. A silent NaN that would otherwise poison every downstream CLV
// and branch-length update instead surfaces here as an EngineFault carrying
// full attribution: which context, which request kind, which partition,
// which edge. The faulted context's CLVs are invalidated before the throw,
// so catching the fault and re-issuing work recomputes from clean state
// (the search's degradation ladder in search.cpp does exactly that for
// candidate waves, whose frozen parents make the retry bit-reproducible).
#pragma once

#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "tree/tree.hpp"

namespace plk {

/// Attribution of one non-finite reduction detected at a flush boundary.
struct FaultRecord {
  /// Which reduced quantity went non-finite.
  enum class Value { kLnl, kDeriv1, kDeriv2 };
  Value value = Value::kLnl;
  int partition = -1;
  /// The request's root/evaluation edge (kNoId for sumtable-style requests).
  EdgeId edge = kNoId;
  /// EvalRequest::Kind of the faulted request, as an int (the enum lives in
  /// engine_core.hpp; this header stays below it).
  int request_kind = 0;
  /// True when the faulted context is a copy-on-score overlay — the
  /// recoverable case: its frozen parent is untouched, so re-scoring from
  /// the parent reproduces the fault-free result exactly.
  bool overlay = false;
  /// Primary owner shard of the faulted partition (-1 when the engine runs
  /// unsharded). Containment attribution: the fault is localized to one
  /// sub-core's slice; sibling shards' contexts and buffers are untouched.
  int shard = -1;
};

/// Thrown by EngineCore::wait() / the *_now calls when a flush produced
/// non-finite reductions (and by nothing else). All per-flush bookkeeping
/// has completed by the time this is thrown: the pending queue is empty,
/// tip-table pins are released, and every faulted context has been
/// invalidated — the core is ready for new commands immediately.
class EngineFault : public std::runtime_error {
 public:
  EngineFault(const std::string& what, std::vector<FaultRecord> records)
      : std::runtime_error(what), records_(std::move(records)) {}

  const std::vector<FaultRecord>& records() const { return records_; }

  /// True when every faulted context is an overlay (see FaultRecord::overlay)
  /// — the caller can retry from the untouched parents.
  bool overlays_only() const {
    for (const FaultRecord& r : records_)
      if (!r.overlay) return false;
    return !records_.empty();
  }

 private:
  std::vector<FaultRecord> records_;
};

}  // namespace plk
