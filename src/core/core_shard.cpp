#include "core/core_shard.hpp"

namespace plk {

CoreShard::CoreShard(int index, const ShardSpec& spec, int partitions,
                     bool master_inline, bool instrument, bool cpu_time,
                     std::vector<int> bind_cpus, int concurrency_hint)
    : index_(index),
      spec_(spec),
      range_(static_cast<std::size_t>(partitions), {0, 0}) {
  for (const ShardSlice& s : spec_.slices)
    range_[static_cast<std::size_t>(s.part)] = {s.vt_begin, s.vt_end};
  team_ = std::make_unique<ThreadTeam>(spec_.threads, instrument, cpu_time,
                                       /*detached=*/!master_inline,
                                       std::move(bind_cpus), concurrency_hint);
}

void CoreShard::cache_slice_costs(const WorkSchedule& sched,
                                  const std::vector<PartitionShape>& shapes) {
  slice_cost_.assign(shapes.size(), 0.0);
  for (const ShardSlice& s : spec_.slices) {
    double c = 0.0;
    for (int vt = s.vt_begin; vt < s.vt_end; ++vt)
      c += sched.tid_part_cost(vt, s.part,
                               shapes[static_cast<std::size_t>(s.part)]);
    slice_cost_[static_cast<std::size_t>(s.part)] = c;
  }
}

}  // namespace plk
