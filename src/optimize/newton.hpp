// Safeguarded Newton-Raphson for branch-length maximization.
//
// RAxML optimizes each branch length by Newton-Raphson on d lnL / db using
// the analytic first and second derivatives from the eigendecomposition
// (see core/kernels.hpp nr_slice). Like the Brent minimizer, this is a
// resumable state machine so the paper's newPAR strategy can drive one
// instance per partition in lock-step: each parallel command evaluates the
// derivatives of every non-converged partition at once, with a boolean
// convergence vector — exactly the mechanism the paper introduces.
#pragma once

#include <cmath>
#include <stdexcept>

namespace plk {

/// Resumable Newton-Raphson maximizer of lnL(b) over [lo, hi].
class NewtonBranch {
 public:
  /// `b0`: starting length (clamped into [lo, hi]).
  /// Convergence: |step| < tol, or |d1| < grad_tol, or max_iter reached.
  NewtonBranch(double b0, double lo, double hi, double tol = 1e-8,
               int max_iter = 64, double grad_tol = 1e-10)
      : lo_(lo), hi_(hi), tol_(tol), grad_tol_(grad_tol), max_iter_(max_iter) {
    if (!(lo < hi)) throw std::invalid_argument("NewtonBranch: lo >= hi");
    b_ = b0 < lo ? lo : (b0 > hi ? hi : b0);
    blo_ = lo_;
    bhi_ = hi_;
  }

  /// Current branch length whose derivatives the caller must supply.
  double current() const { return b_; }
  bool done() const { return done_; }
  int iterations() const { return iter_; }

  /// Supply d lnL/db and d2 lnL/db2 at current(); advances one step.
  ///
  /// Safeguarding: for a unimodal lnL the gradient sign brackets the
  /// maximum (d1 > 0 means the optimum lies above b, d1 < 0 below), so the
  /// observed signs maintain a shrinking bracket [blo, bhi]. A Newton step
  /// is accepted only if it stays inside the bracket; otherwise the step
  /// falls back to the bracket's *geometric* midpoint (branch lengths live
  /// on a log scale — the arithmetic midpoint of [1e-7, 100] would be a
  /// terrible guess). This guarantees monotone bracket shrinkage and makes
  /// per-branch optimization safe even on locally non-concave surfaces.
  void feed(double d1, double d2) {
    if (done_) throw std::logic_error("NewtonBranch: feed() after done");
    ++iter_;

    if (d1 > 0.0 && b_ > blo_) blo_ = b_;
    if (d1 < 0.0 && b_ < bhi_) bhi_ = b_;

    const double abs_d1 = d1 < 0 ? -d1 : d1;
    const bool pinned = (b_ <= lo_ && d1 < 0.0) || (b_ >= hi_ && d1 > 0.0);
    if (abs_d1 < grad_tol_ || pinned || iter_ >= max_iter_ ||
        bhi_ - blo_ < tol_) {
      done_ = true;
      return;
    }

    double nb;
    if (d2 < 0.0) {
      nb = b_ - d1 / d2;
    } else {
      // Not concave here: geometric uphill probe.
      nb = d1 > 0.0 ? b_ * 4.0 : b_ * 0.25;
    }
    if (!(nb > blo_ && nb < bhi_)) {
      // Outside the gradient bracket: geometric bisection.
      nb = std::sqrt(blo_ * bhi_);
      if (!(nb > blo_ && nb < bhi_)) nb = 0.5 * (blo_ + bhi_);
    }
    if (nb < lo_) nb = lo_;
    if (nb > hi_) nb = hi_;

    const double step = nb > b_ ? nb - b_ : b_ - nb;
    b_ = nb;
    if (step < tol_) done_ = true;
  }

 private:
  double lo_, hi_, tol_, grad_tol_;
  int max_iter_;
  double b_ = 0.1;
  double blo_ = 0.0, bhi_ = 0.0;  // gradient-sign bracket (set in ctor)
  int iter_ = 0;
  bool done_ = false;
};

}  // namespace plk
