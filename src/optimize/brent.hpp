// Brent's derivative-free 1-D minimization (Brent 1973, the paper's [39]).
//
// RAxML optimizes the Gamma shape alpha and the Q-matrix exchangeabilities
// with Brent's method; the paper's newPAR redesign requires advancing *many
// independent Brent instances in lock-step* (one per partition), evaluating
// all of their current proposals in a single parallel pass. The minimizer is
// therefore written as a resumable state machine ("inversion of control"):
//
//   BrentMinimizer bm(lo, hi, tol);
//   while (!bm.done()) { double x = bm.proposal(); bm.feed(f(x)); }
//   use bm.best(), bm.best_f();
//
// The algorithm is Brent's `localmin`: golden-section search with parabolic
// interpolation acceleration, no derivative and no initial bracketing triple
// required — only the interval [lo, hi].
#pragma once

#include <cmath>
#include <functional>
#include <stdexcept>

namespace plk {

/// Resumable Brent minimizer over a fixed interval.
class BrentMinimizer {
 public:
  /// Minimize over [lo, hi]; stop when the bracket around the minimum is
  /// smaller than ~2 * (rel_tol * |x| + abs_tol). `first_guess`, if inside
  /// the interval, is used as the initial evaluation point (warm start from
  /// the current parameter value); otherwise the golden point is used.
  BrentMinimizer(double lo, double hi, double rel_tol = 1e-6,
                 double abs_tol = 1e-10, int max_iter = 200,
                 double first_guess = std::nan(""));

  /// The next point whose function value the caller must supply via feed().
  /// Only valid while !done().
  double proposal() const;

  /// Supply f(proposal()); advances the state machine.
  void feed(double f);

  bool done() const { return done_; }
  /// Argmin and minimum found so far (final after done()).
  double best() const { return x_; }
  double best_f() const { return fx_; }
  int iterations() const { return iter_; }

 private:
  void plan_next();  // compute the next proposal or finish

  static constexpr double kGolden = 0.3819660112501051;  // (3 - sqrt 5)/2

  double a_, b_;            // current interval
  double rel_tol_, abs_tol_;
  int max_iter_, iter_ = 0;
  bool primed_ = false;     // first evaluation fed?
  bool done_ = false;
  double x_ = 0, w_ = 0, v_ = 0;
  double fx_ = 0, fw_ = 0, fv_ = 0;
  double d_ = 0, e_ = 0;
  double u_ = 0;            // current proposal
};

/// Convenience wrapper: minimize `fn` on [lo, hi]; returns argmin and
/// writes the minimum into *fmin if non-null.
double brent_minimize(const std::function<double(double)>& fn, double lo,
                      double hi, double rel_tol = 1e-6, int max_iter = 200,
                      double* fmin = nullptr,
                      double first_guess = std::nan(""));

}  // namespace plk
