#include "optimize/brent.hpp"

#include <algorithm>

namespace plk {

BrentMinimizer::BrentMinimizer(double lo, double hi, double rel_tol,
                               double abs_tol, int max_iter,
                               double first_guess)
    : a_(lo),
      b_(hi),
      rel_tol_(rel_tol),
      abs_tol_(abs_tol),
      max_iter_(max_iter) {
  if (!(lo < hi)) throw std::invalid_argument("BrentMinimizer: lo >= hi");
  if (std::isfinite(first_guess) && first_guess > lo && first_guess < hi)
    u_ = first_guess;
  else
    u_ = a_ + kGolden * (b_ - a_);
}

double BrentMinimizer::proposal() const {
  if (done_) throw std::logic_error("BrentMinimizer: proposal() after done");
  return u_;
}

void BrentMinimizer::feed(double f) {
  if (done_) throw std::logic_error("BrentMinimizer: feed() after done");
  ++iter_;
  if (!primed_) {
    primed_ = true;
    x_ = w_ = v_ = u_;
    fx_ = fw_ = fv_ = f;
    plan_next();
    return;
  }
  const double u = u_, fu = f;
  // Standard localmin bookkeeping.
  if (fu <= fx_) {
    if (u < x_)
      b_ = x_;
    else
      a_ = x_;
    v_ = w_; fv_ = fw_;
    w_ = x_; fw_ = fx_;
    x_ = u; fx_ = fu;
  } else {
    if (u < x_)
      a_ = u;
    else
      b_ = u;
    if (fu <= fw_ || w_ == x_) {
      v_ = w_; fv_ = fw_;
      w_ = u; fw_ = fu;
    } else if (fu <= fv_ || v_ == x_ || v_ == w_) {
      v_ = u; fv_ = fu;
    }
  }
  plan_next();
}

void BrentMinimizer::plan_next() {
  if (iter_ >= max_iter_) {
    done_ = true;
    return;
  }
  const double m = 0.5 * (a_ + b_);
  const double tol = rel_tol_ * std::abs(x_) + abs_tol_;
  const double tol2 = 2.0 * tol;
  if (std::abs(x_ - m) <= tol2 - 0.5 * (b_ - a_)) {
    done_ = true;
    return;
  }
  double d = 0.0;
  bool use_golden = true;
  if (std::abs(e_) > tol) {
    // Try a parabolic fit through (x, fx), (w, fw), (v, fv).
    const double r = (x_ - w_) * (fx_ - fv_);
    double q = (x_ - v_) * (fx_ - fw_);
    double p = (x_ - v_) * q - (x_ - w_) * r;
    q = 2.0 * (q - r);
    if (q > 0.0) p = -p;
    q = std::abs(q);
    const double e_old = e_;
    e_ = d_;
    if (std::abs(p) < std::abs(0.5 * q * e_old) && p > q * (a_ - x_) &&
        p < q * (b_ - x_)) {
      d = p / q;  // parabolic step accepted
      const double u = x_ + d;
      // Do not evaluate too close to the interval ends.
      if (u - a_ < tol2 || b_ - u < tol2) d = (m > x_) ? tol : -tol;
      use_golden = false;
    }
  }
  if (use_golden) {
    e_ = (x_ < m) ? b_ - x_ : a_ - x_;
    d = kGolden * e_;
  }
  d_ = d;
  u_ = (std::abs(d) >= tol) ? x_ + d : x_ + (d > 0 ? tol : -tol);
}

double brent_minimize(const std::function<double(double)>& fn, double lo,
                      double hi, double rel_tol, int max_iter, double* fmin,
                      double first_guess) {
  BrentMinimizer bm(lo, hi, rel_tol, 1e-10, max_iter, first_guess);
  while (!bm.done()) bm.feed(fn(bm.proposal()));
  if (fmin) *fmin = bm.best_f();
  return bm.best();
}

}  // namespace plk
